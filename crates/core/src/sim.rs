//! The cycle-accurate simultaneous-multithreading superscalar simulator.
//!
//! Pipeline stages run in reverse order within a cycle (commit → store drain
//! → writeback → issue → decode → fetch), so each stage observes the
//! previous cycle's downstream state, and a result written back in cycle *c*
//! can wake a dependant issuing in cycle *c* (bypassing) while newly decoded
//! instructions wait until *c + 1* to issue.
//!
//! See the crate docs for the architecture overview and DESIGN.md for the
//! paper mapping.

use std::collections::VecDeque;

use smt_checkpoint::{DecodeError, Reader, Snapshot, Writer};
use smt_isa::semantics::{alu_result, branch_taken, effective_addr};
use smt_isa::{window_size, FuClass, Opcode, Program, Reg, MAX_THREADS, WORD_BYTES};
use smt_mem::{CacheStats, DataCache, MainMemory, MemError, Outcome, StoreBuffer};
use smt_trace::{DecodedSlot, MemKind, Occupancy, RetireKind, SlotCause, TraceEvent, TraceSink};
use smt_uarch::{FuPool, Predictor, TagAllocator};

use crate::commit::{CommitSink, Retirement};
use crate::config::{warm, FetchPolicy, RenamingMode, SimConfig};
use crate::error::SimError;
use crate::fetch::{FetchedBlock, FetchedInsn, InstructionUnit};
use crate::stats::{FuUsage, SimStats};
use crate::su::{EntryState, Lookup, Operand, SchedulingUnit, StagedEntry, NO_SRC};

/// Section tags of the snapshot payload, in serialization order. A tag
/// mismatch on decode pinpoints the diverging component instead of
/// reporting garbage fields downstream of a framing error.
mod sec {
    pub const CORE: u32 = 1;
    pub const SU: u32 = 2;
    pub const FETCH: u32 = 3;
    pub const PREDICTOR: u32 = 4;
    pub const FU: u32 = 5;
    pub const TAGS: u32 = 6;
    pub const CACHE: u32 = 7;
    pub const STORE_BUFFER: u32 = 8;
    pub const MEMORY: u32 = 9;
    pub const FETCH_BUFFER: u32 = 10;
    pub const STATS: u32 = 11;
}

/// Section tags of a *warm* (fork-only) snapshot payload. Disjoint from
/// [`sec`] so an exact-restore path handed a warm payload (or vice versa)
/// fails on the very first section tag.
mod wsec {
    pub const ARCH: u32 = 101;
    pub const MEMORY: u32 = 102;
}

/// Stable identity hash of a configuration, as stored in a
/// [`Snapshot`]'s `config_hash` and used to key result caches: equal
/// configurations hash equally across processes and runs.
#[must_use]
pub fn config_identity(config: &SimConfig) -> u64 {
    smt_checkpoint::stable_hash(config)
}

/// Stable identity hash of a program — its text, entry point, and data
/// image. Labels and other assembler conveniences do not contribute:
/// two builds that produce the same machine program hash equally.
#[must_use]
pub fn program_identity(program: &Program) -> u64 {
    smt_checkpoint::stable_hash(&(program.text(), program.entry(), program.data()))
}

/// The simulator. Owns all machine state for one run of one program.
///
/// ```
/// use smt_core::{SimConfig, Simulator};
/// use smt_isa::builder::ProgramBuilder;
///
/// let mut b = ProgramBuilder::new();
/// let r = b.reg();
/// b.li(r, 41);
/// b.addi(r, r, 1);
/// b.halt();
/// let program = b.build(2)?;
///
/// let mut sim = Simulator::new(SimConfig::default().with_threads(2), &program);
/// let stats = sim.run()?;
/// assert_eq!(sim.reg(0, r), 42);
/// assert_eq!(sim.reg(1, r), 42);
/// assert!(stats.cycles > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Simulator<'p> {
    config: SimConfig,
    /// One program per thread for a heterogeneous mix; a single shared
    /// entry for the homogeneous (SPMD) case.
    programs: Vec<&'p Program>,
    /// Threads run distinct programs: each thread owns a private segment
    /// of the flat backing memory and sees itself as thread 0 of 1.
    multiprogram: bool,
    /// Per-thread byte offset of the thread's data segment in the flat
    /// backing memory (all zero when homogeneous).
    mem_base: Vec<u64>,
    /// Per-thread data-segment size in bytes — the bound the thread's own
    /// accesses are checked against, so faults carry thread-local
    /// addresses identical to a solo run of that program.
    mem_span: Vec<u64>,
    cycle: u64,
    su: SchedulingUnit,
    iu: InstructionUnit,
    predictor: Predictor,
    fu: FuPool,
    tags: TagAllocator,
    regfile: Vec<u64>,
    window: usize,
    mem: MainMemory,
    cache: DataCache,
    sb: StoreBuffer,
    /// Fetched groups awaiting decode, oldest first; holds at most
    /// `config.fetch_threads` groups (each port contributes one per cycle).
    /// Per-thread order within the queue is fetch order.
    fetch_queue: VecDeque<FetchedBlock>,
    /// Per-thread age-ordered positions `(block id, entry idx)` of resident
    /// store/sync entries that are not yet done. Mirrors the scheduling
    /// unit so the load/store ordering gates are a front peek instead of a
    /// window scan: an access at `(bid, ei)` is blocked iff the thread's
    /// oldest outstanding store/sync sits at a strictly older position.
    memsync: Vec<VecDeque<(u64, usize)>>,
    /// Decode's staging buffer, drained into the scheduling unit by
    /// `push_block` and reused every cycle (never reallocated in steady
    /// state — sized to one block at construction).
    decode_buf: Vec<StagedEntry>,
    /// The ICOUNT fetch policy's per-thread occupancy scratch, reused
    /// every cycle (only written when that policy is selected).
    occupancy_buf: Vec<u32>,
    /// Next decode-order instruction identity (see [`StagedEntry::uid`]).
    next_uid: u64,
    /// [`drain`](Self::drain) is parking the machine: the fetch stage
    /// produces nothing until the pipeline empties. Transient (never
    /// serialized) — `drain` sets and clears it around its own stepping.
    fetch_suppressed: bool,
    stats: SimStats,
}

impl<'p> Simulator<'p> {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the program does not fit
    /// the register partition; use [`Simulator::try_new`] for a fallible
    /// variant.
    #[must_use]
    pub fn new(config: SimConfig, program: &'p Program) -> Self {
        Self::try_new(config, program).expect("valid configuration and compatible program")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// * [`SimError::Config`] if the configuration fails validation,
    /// * [`SimError::RegisterWindow`] if the program names a register
    ///   outside the per-thread window implied by the thread count.
    pub fn try_new(config: SimConfig, program: &'p Program) -> Result<Self, SimError> {
        Self::build(config, vec![program], false)
    }

    /// Fallible constructor for a heterogeneous **program mix**: one
    /// program per hardware thread. Each thread fetches and decodes its
    /// own text, owns a private segment of the flat data memory (its
    /// program's image, bounds-checked against its own size so faults
    /// carry thread-local addresses), and sees itself as thread 0 of a
    /// 1-thread machine — architecturally, `threads` independent
    /// single-threaded programs sharing one pipeline, cache, and store
    /// buffer.
    ///
    /// A single-thread mix is canonicalized to the homogeneous form (the
    /// two are architecturally identical), so its snapshots interchange
    /// with [`try_new`](Self::try_new)'s.
    ///
    /// # Errors
    ///
    /// * [`SimError::Program`] if `programs` does not hold exactly
    ///   `config.threads` entries,
    /// * everything [`try_new`](Self::try_new) reports.
    pub fn try_new_mix(config: SimConfig, programs: &[&'p Program]) -> Result<Self, SimError> {
        if programs.len() != config.threads {
            return Err(SimError::Program(format!(
                "mix of {} programs for {} threads",
                programs.len(),
                config.threads
            )));
        }
        let multiprogram = config.threads > 1;
        let programs = if multiprogram {
            programs.to_vec()
        } else {
            vec![programs[0]]
        };
        Self::build(config, programs, multiprogram)
    }

    fn build(
        config: SimConfig,
        programs: Vec<&'p Program>,
        multiprogram: bool,
    ) -> Result<Self, SimError> {
        config.validate()?;
        let window = window_size(config.threads);
        for program in &programs {
            for (pc, insn) in program.decoded().iter().enumerate() {
                let regs = [insn.dest, insn.srcs[0], insn.srcs[1]];
                for reg in regs.into_iter().flatten() {
                    if reg.index() >= window {
                        return Err(SimError::RegisterWindow {
                            pc,
                            reg,
                            window,
                            threads: config.threads,
                        });
                    }
                }
            }
        }
        let mut regfile = vec![0u64; window * config.threads];
        for tid in 0..config.threads {
            // A mix thread is thread 0 of 1 from its program's view; an
            // SPMD thread knows its place in the gang.
            let (tid_seed, n_seed) = if multiprogram {
                (0, 1)
            } else {
                (tid as u64, config.threads as u64)
            };
            regfile[tid * window] = tid_seed;
            regfile[tid * window + 1] = n_seed;
        }
        let (mem, mem_base, mem_span) = if multiprogram {
            let mut words: Vec<u64> = Vec::new();
            let mut base = Vec::with_capacity(config.threads);
            let mut span = Vec::with_capacity(config.threads);
            for p in &programs {
                base.push(words.len() as u64 * WORD_BYTES);
                let image = p.data().to_words();
                span.push(image.len() as u64 * WORD_BYTES);
                words.extend(image);
            }
            (MainMemory::from_words(words), base, span)
        } else {
            let mem = MainMemory::from_image(programs[0].data());
            let size = mem.size();
            (mem, vec![0; config.threads], vec![size; config.threads])
        };
        let entries: Vec<usize> = (0..config.threads)
            .map(|tid| programs[if multiprogram { tid } else { 0 }].entry())
            .collect();
        let mut su = SchedulingUnit::new(config.su_blocks(), config.block_size);
        su.reserve_threads(config.threads);
        Ok(Simulator {
            su,
            iu: InstructionUnit::with_entries(
                config.fetch_policy,
                &entries,
                config.fetch_width,
                config.aligned_fetch,
            ),
            predictor: Predictor::build(config.predictor, config.btb_entries, config.threads),
            fu: FuPool::new(config.fu),
            tags: TagAllocator::new(config.su_depth),
            regfile,
            window,
            mem,
            cache: DataCache::new(config.cache),
            sb: StoreBuffer::new(config.store_buffer),
            fetch_queue: VecDeque::with_capacity(config.fetch_threads),
            memsync: vec![VecDeque::with_capacity(config.su_depth); config.threads],
            decode_buf: Vec::with_capacity(config.block_size),
            occupancy_buf: vec![0; config.threads],
            next_uid: 0,
            fetch_suppressed: false,
            stats: SimStats {
                committed: vec![0; config.threads],
                issue_histogram: vec![0; config.issue_width + 1],
                ..SimStats::default()
            },
            cycle: 0,
            config,
            programs,
            multiprogram,
            mem_base,
            mem_span,
        })
    }

    /// The program thread `tid` runs (every thread's in the homogeneous
    /// case).
    #[must_use]
    pub fn program_of(&self, tid: usize) -> &'p Program {
        self.programs[if self.multiprogram { tid } else { 0 }]
    }

    /// Whether threads run distinct programs (a heterogeneous mix).
    #[must_use]
    pub fn is_multiprogram(&self) -> bool {
        self.multiprogram
    }

    /// Thread `tid`'s data segment in the flat backing memory, as a
    /// `(byte offset, byte size)` pair — `(0, full size)` when
    /// homogeneous. Mix verifiers use it to carve each thread's view out
    /// of [`memory`](Self::memory).
    #[must_use]
    pub fn thread_segment(&self, tid: usize) -> (u64, u64) {
        (self.mem_base[tid], self.mem_span[tid])
    }

    /// Translates a thread-local data address to its location in the
    /// flat backing memory, reproducing [`MainMemory`]'s fault order
    /// (alignment first, then bounds) against the thread's own segment:
    /// a mix thread faults with exactly the address and bound it would
    /// see running alone.
    fn translate(&self, tid: usize, addr: u64) -> Result<u64, MemError> {
        if !addr.is_multiple_of(WORD_BYTES) {
            return Err(MemError::Unaligned { addr });
        }
        if addr >= self.mem_span[tid] {
            return Err(MemError::OutOfBounds {
                addr,
                size: self.mem_span[tid],
            });
        }
        Ok(self.mem_base[tid] + addr)
    }

    /// The per-thread identity vector stored in snapshots: one hash for
    /// the homogeneous case, one per thread for a mix.
    fn identity_vec(&self) -> Vec<u64> {
        if self.multiprogram {
            self.programs.iter().map(|p| program_identity(p)).collect()
        } else {
            vec![program_identity(self.programs[0])]
        }
    }

    /// The initial flat-memory contents — the snapshot delta baseline.
    fn baseline_words(&self) -> Vec<u64> {
        if self.multiprogram {
            let mut words = Vec::new();
            for p in &self.programs {
                words.extend(p.data().to_words());
            }
            words
        } else {
            self.programs[0].data().to_words()
        }
    }

    /// The configuration of this run.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Current cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Whether the machine has fully drained (all threads retired, pipeline
    /// and store buffer empty).
    #[must_use]
    pub fn finished(&self) -> bool {
        self.iu.all_retired()
            && self.su.is_empty()
            && self.sb.is_empty()
            && self.fetch_queue.is_empty()
    }

    /// Architectural register `r` of thread `tid`.
    ///
    /// # Panics
    ///
    /// Panics if `tid` or `r` is out of range for the partition.
    #[must_use]
    pub fn reg(&self, tid: usize, r: Reg) -> u64 {
        assert!(tid < self.config.threads, "thread {tid} out of range");
        assert!(r.index() < self.window, "register {r} outside the window");
        self.regfile[tid * self.window + r.index()]
    }

    /// The whole physical register file (thread windows concatenated) —
    /// layout-compatible with [`smt_isa::interp::Interp::reg_file`].
    #[must_use]
    pub fn reg_file(&self) -> &[u64] {
        &self.regfile
    }

    /// Architectural memory word at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics on unaligned or out-of-bounds addresses.
    #[must_use]
    pub fn mem_word(&self, addr: u64) -> u64 {
        self.mem.read(addr).expect("valid address")
    }

    /// Architectural data memory.
    #[must_use]
    pub fn memory(&self) -> &MainMemory {
        &self.mem
    }

    /// Statistics accumulated so far (fully populated after [`run`]).
    ///
    /// [`run`]: Self::run
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The instruction unit (fetch policy state), for tests probing
    /// per-cycle policy behaviour via [`step`](Self::step).
    #[must_use]
    pub fn fetch_unit(&self) -> &InstructionUnit {
        &self.iu
    }

    /// Runs to completion.
    ///
    /// # Errors
    ///
    /// * [`SimError::Watchdog`] if `max_cycles` elapse first (deadlock),
    /// * [`SimError::Mem`] on a non-speculative memory fault.
    pub fn run(&mut self) -> Result<SimStats, SimError> {
        self.run_inner(None, None)
    }

    /// Runs to completion, delivering every architecturally retired
    /// instruction to `sink` in commit order (see [`CommitSink`]).
    ///
    /// Behaviorally identical to [`run`](Self::run): the sink observes the
    /// machine, it cannot perturb it.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run). On a commit-time memory fault the sink
    /// receives one final event with [`Retirement::fault`] set before the
    /// error is returned.
    pub fn run_observed(&mut self, sink: &mut dyn CommitSink) -> Result<SimStats, SimError> {
        self.run_inner(Some(sink), None)
    }

    /// Runs to completion, emitting every pipeline lifecycle event into
    /// `trace` (see [`TraceSink`]). Like a commit sink, a trace sink
    /// observes the machine but cannot perturb it: traced and untraced runs
    /// are cycle-for-cycle identical.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_traced(&mut self, trace: &mut dyn TraceSink) -> Result<SimStats, SimError> {
        self.run_inner(None, Some(trace))
    }

    /// Runs with both a commit sink and a trace sink attached.
    ///
    /// # Errors
    ///
    /// Same as [`run_observed`](Self::run_observed).
    pub fn run_observed_traced(
        &mut self,
        sink: &mut dyn CommitSink,
        trace: &mut dyn TraceSink,
    ) -> Result<SimStats, SimError> {
        self.run_inner(Some(sink), Some(trace))
    }

    fn run_inner(
        &mut self,
        mut sink: Option<&mut dyn CommitSink>,
        mut trace: Option<&mut dyn TraceSink>,
    ) -> Result<SimStats, SimError> {
        while !self.finished() {
            if self.cycle >= self.config.max_cycles {
                return Err(SimError::Watchdog {
                    cycles: self.config.max_cycles,
                });
            }
            self.step_inner(sink.as_deref_mut(), trace.as_deref_mut())?;
        }
        self.finalize_stats();
        Ok(self.stats.clone())
    }

    /// Advances the machine one cycle.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run), minus the watchdog.
    pub fn step(&mut self) -> Result<(), SimError> {
        self.step_inner(None, None)
    }

    /// Advances one cycle, delivering any retirements to `sink`.
    ///
    /// # Errors
    ///
    /// Same as [`step`](Self::step).
    pub fn step_observed(&mut self, sink: &mut dyn CommitSink) -> Result<(), SimError> {
        self.step_inner(Some(sink), None)
    }

    /// Advances one cycle, emitting lifecycle events into `trace`.
    ///
    /// # Errors
    ///
    /// Same as [`step`](Self::step).
    pub fn step_traced(&mut self, trace: &mut dyn TraceSink) -> Result<(), SimError> {
        self.step_inner(None, Some(trace))
    }

    fn step_inner(
        &mut self,
        sink: Option<&mut (dyn CommitSink + '_)>,
        mut trace: Option<&mut (dyn TraceSink + '_)>,
    ) -> Result<(), SimError> {
        self.commit_stage(sink, trace.as_deref_mut())?;
        self.drain_store_stage()?;
        self.writeback_stage(trace.as_deref_mut())?;
        self.issue_stage(trace.as_deref_mut())?;
        self.decode_stage(trace.as_deref_mut());
        self.fetch_stage();
        self.stats.su_occupancy_sum += self.su.num_entries() as u64;
        if let Some(t) = trace {
            let occ = self.occupancy();
            t.event(&TraceEvent::CycleEnd {
                cycle: self.cycle,
                occ: &occ,
            });
        }
        self.cycle += 1;
        Ok(())
    }

    /// Snapshot of structure occupancy at the end of the current cycle.
    fn occupancy(&self) -> Occupancy {
        let mut resident = [0u32; MAX_THREADS];
        for bi in 0..self.su.num_blocks() {
            let tid = self.su.block_tid(bi);
            if tid < MAX_THREADS {
                resident[tid] += self.su.block_len(bi) as u32;
            }
        }
        Occupancy {
            su_entries: self.su.num_entries() as u32,
            su_blocks: self.su.num_blocks() as u32,
            store_buffer: self.sb.len() as u32,
            outstanding_misses: self.cache.outstanding_refills(self.cycle) as u32,
            fetch_buffer: !self.fetch_queue.is_empty(),
            resident,
        }
    }

    fn finalize_stats(&mut self) {
        self.stats.cycles = self.cycle;
        self.stats.cache = *self.cache.stats();
        self.stats.fu = FuUsage {
            busy_cycles: FuClass::ALL
                .iter()
                .map(|&class| {
                    let count = self.fu.config().class(class).count;
                    (
                        class,
                        (0..count).map(|i| self.fu.busy_cycles(class, i)).collect(),
                    )
                })
                .collect(),
        };
    }

    // ---- commit -------------------------------------------------------------

    fn commit_stage(
        &mut self,
        mut sink: Option<&mut (dyn CommitSink + '_)>,
        mut trace: Option<&mut (dyn TraceSink + '_)>,
    ) -> Result<(), SimError> {
        if let Some(i) = self
            .su
            .find_committable(self.config.commit_policy, self.config.commit_window_blocks)
        {
            // Faults must be precise at block granularity: if any entry in
            // the committing block faulted, raise the (oldest) fault before
            // a single architectural side effect — no register writes, no
            // store buffering, no predictor updates, no retirement. The
            // block-level flag makes the common (fault-free) case a single
            // test; the entry scan runs only on the way to aborting.
            if self.su.block_has_fault(i) {
                let tid = self.su.block_tid(i);
                let ei = (0..self.su.block_len(i))
                    .find(|&ei| self.su.fault_at(i, ei).is_some())
                    .expect("fault flag implies a faulted entry");
                let err = self
                    .su
                    .fault_at(i, ei)
                    .expect("find predicate guarantees a fault");
                let pc = self.su.pc_at(i, ei);
                let insn = self.su.insn_at(i, ei);
                let uid = self.su.uid_at(i, ei);
                if let Some(s) = sink.as_deref_mut() {
                    s.retired(&Retirement {
                        cycle: self.cycle,
                        block: self.su.block_id(i),
                        tid,
                        pc,
                        insn,
                        dest: None,
                        mem: None,
                        fault: Some(err),
                    });
                }
                if let Some(t) = trace.as_deref_mut() {
                    t.event(&TraceEvent::Retired {
                        cycle: self.cycle,
                        uid,
                        kind: RetireKind::Fault,
                    });
                }
                return Err(SimError::Mem { err, tid, pc });
            }
            if self.buffer_block_stores(i) {
                let bid = self.su.block_id(i);
                let tid = self.su.block_tid(i);
                for ei in 0..self.su.block_len(i) {
                    let e = self.su.commit_view(i, ei);
                    if let Some(rd) = e.insn.dest {
                        self.regfile[tid * self.window + rd.index()] = e.result;
                    }
                    let mut architectural = true;
                    match e.insn.op {
                        op if op.is_cond_branch() => {
                            // Predictor history updates when the instruction
                            // is shifted out, per the paper.
                            self.predictor.update(tid, e.pc, e.taken, e.target);
                        }
                        Opcode::J => self.predictor.update(tid, e.pc, true, e.target),
                        Opcode::Halt => self.iu.retire(tid),
                        Opcode::Wait if !e.sync_satisfied => {
                            // Spin retirement: discard the failed poll and
                            // refetch the WAIT, like a software spin loop.
                            self.iu.redirect(tid, e.pc);
                            self.stats.wait_spin_cycles += 1;
                            architectural = false;
                        }
                        _ => {}
                    }
                    if architectural {
                        self.stats.committed[tid] += 1;
                        if let Some(s) = sink.as_deref_mut() {
                            s.retired(&Retirement {
                                cycle: self.cycle,
                                block: bid,
                                tid,
                                pc: e.pc,
                                insn: e.insn,
                                dest: e.insn.dest.map(|rd| (rd, e.result)),
                                mem: (e.insn.op == Opcode::Sd).then_some((e.mem_addr, e.result)),
                                fault: None,
                            });
                        }
                    }
                    if let Some(t) = trace.as_deref_mut() {
                        t.event(&TraceEvent::Retired {
                            cycle: self.cycle,
                            uid: e.uid,
                            kind: if architectural {
                                RetireKind::Arch
                            } else {
                                RetireKind::Spin
                            },
                        });
                    }
                    self.tags.free(e.tag);
                }
                // Frees the block's row and deregisters every entry — the
                // committed stores leave the forwarding index here.
                self.su.free_block(i);
            } else {
                // The paper's restricted store policy: a committing store
                // needs a store-buffer slot; a full buffer stalls commit.
                self.stats.store_buffer_full_stalls += 1;
            }
        }
        // Masked Round Robin: mask the thread whose bottom block cannot
        // commit; harmless under the other policies.
        self.iu.update_mask(self.su.bottom_block_status());
        Ok(())
    }

    /// Pushes the committing block's stores into the store buffer (released
    /// immediately: commit *is* the release point). Returns whether every
    /// store made it; progress is guaranteed because the buffer drains one
    /// entry per cycle regardless of pipeline state.
    fn buffer_block_stores(&mut self, bi: usize) -> bool {
        let tid = self.su.block_tid(bi);
        for ei in 0..self.su.block_len(bi) {
            // Faulting blocks never reach here: commit pre-scans for
            // faults before buffering any of the block's stores.
            if self.su.insn_at(bi, ei).op != Opcode::Sd || self.su.store_buffered_at(bi, ei) {
                continue;
            }
            let tag = self.su.tag_at(bi, ei).raw();
            let addr = self.su.mem_addr_at(bi, ei);
            let value = self.su.result_at(bi, ei);
            let pc = self.su.pc_at(bi, ei);
            if self.sb.insert(tag, tid, addr, value, pc).is_err() {
                return false;
            }
            self.sb.release(tag);
            self.su.set_store_buffered(bi, ei);
        }
        true
    }

    // ---- store drain ----------------------------------------------------------

    fn drain_store_stage(&mut self) -> Result<(), SimError> {
        let Some(entry) = self.sb.peek_drainable() else {
            return Ok(());
        };
        match self.cache.access(entry.addr, self.cycle) {
            Outcome::Blocked { .. } => Ok(()), // cache port busy; retry next cycle
            _ => {
                self.mem
                    .write(entry.addr, entry.value)
                    .map_err(|err| SimError::Mem {
                        err,
                        tid: entry.tid,
                        pc: entry.pc,
                    })?;
                self.sb.remove_id(entry.id);
                Ok(())
            }
        }
    }

    // ---- writeback --------------------------------------------------------------

    fn writeback_stage(
        &mut self,
        mut trace: Option<&mut (dyn TraceSink + '_)>,
    ) -> Result<(), SimError> {
        // The scheduling unit's completion heap hands out due completions
        // in the reference order: earliest `done_at`, oldest position
        // breaking ties.
        for _ in 0..self.config.writeback_width {
            let Some((bi, ei)) = self.su.pop_completion(self.cycle) else {
                break;
            };
            self.complete_entry(bi, ei, trace.as_deref_mut())?;
        }
        Ok(())
    }

    fn complete_entry(
        &mut self,
        bi: usize,
        ei: usize,
        mut trace: Option<&mut (dyn TraceSink + '_)>,
    ) -> Result<(), SimError> {
        let now = self.cycle;
        self.su.mark_done(bi, ei);
        let tid = self.su.block_tid(bi);
        let pc = self.su.pc_at(bi, ei);
        let insn = self.su.insn_at(bi, ei);
        let result = self.su.result_at(bi, ei);
        if let Some(t) = trace.as_deref_mut() {
            t.event(&TraceEvent::Completed {
                cycle: now,
                uid: self.su.uid_at(bi, ei),
            });
        }
        if insn.is_memsync() {
            let bid = self.su.block_id(bi);
            let q = &mut self.memsync[tid];
            let pos = q
                .iter()
                .position(|&p| p == (bid, ei))
                .expect("completing store/sync is tracked in the ordering queue");
            q.remove(pos);
        }
        if insn.op == Opcode::Sd && self.su.fault_at(bi, ei).is_none() {
            // A completed non-faulted store becomes a forwarding source
            // until commit or squash removes it.
            self.su.fwd_insert(bi, ei);
        }
        if insn.dest.is_some() {
            self.su.broadcast(bi, ei, result, now);
        }
        match insn.op {
            Opcode::Post => {
                // Non-speculative by the issue gate; apply the increment.
                // The stashed address lives in `result`.
                self.mem
                    .fetch_add(result)
                    .map_err(|err| SimError::Mem { err, tid, pc })?;
            }
            Opcode::Wait
                // A satisfied WAIT releases the thread's fetch suspension;
                // an unsatisfied one keeps fetch parked and will retire as a
                // spin (commit refetches the WAIT itself).
                if self.su.sync_satisfied_at(bi, ei) => {
                    self.iu.resume_if(tid, self.su.tag_at(bi, ei));
                }
            op if op.is_cond_branch() => {
                let taken = self.su.taken_at(bi, ei);
                let target = self.su.target_at(bi, ei);
                let actual_next = if taken { target } else { pc + 1 };
                let predicted_next = if self.su.predicted_taken_at(bi, ei) {
                    self.su.predicted_target_at(bi, ei)
                } else {
                    pc + 1
                };
                self.stats.branches.resolved += 1;
                if actual_next != predicted_next {
                    self.stats.branches.mispredicted += 1;
                    self.su.set_mispredicted(bi, ei);
                    self.squash_wrong_path(tid, bi, ei, actual_next, trace);
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Selective squash: discard every younger same-thread entry, reclaim
    /// their tags, and redirect the thread's fetch. (Stores only enter the
    /// store buffer at commit, so nothing speculative can be resident
    /// there.)
    fn squash_wrong_path(
        &mut self,
        tid: usize,
        bi: usize,
        ei: usize,
        correct_pc: usize,
        mut trace: Option<&mut (dyn TraceSink + '_)>,
    ) {
        // The squash deregisters removed entries from the waiter, producer,
        // and forwarding indexes itself; the simulator only settles the
        // state it owns (tags, ordering queues, fetch redirect).
        let removed = self.su.squash_after(tid, bi, ei).len();
        self.stats.squashed += removed as u64;
        let mut squashed_memsync = 0;
        for idx in 0..removed {
            let r = self.su.squashed_at(idx);
            self.tags.free(r.tag);
            if let Some(t) = trace.as_deref_mut() {
                t.event(&TraceEvent::Squashed {
                    cycle: self.cycle,
                    uid: r.uid,
                });
            }
            // Done store/sync entries already left the ordering queue when
            // they completed; only outstanding ones are still tracked.
            if r.memsync_outstanding {
                squashed_memsync += 1;
            }
        }
        // Squashed entries are the thread's youngest, so its squashed
        // store/sync positions are exactly the back of the ordering queue.
        for _ in 0..squashed_memsync {
            self.memsync[tid].pop_back();
        }
        self.iu.redirect(tid, correct_pc);
        // Any of the thread's groups waiting at decode are wrong-path too;
        // their storage goes back to the fetcher's pool.
        let mut i = 0;
        while i < self.fetch_queue.len() {
            if self.fetch_queue[i].tid == tid {
                let b = self.fetch_queue.remove(i).expect("index in bounds");
                self.iu.recycle(b.insns);
            } else {
                i += 1;
            }
        }
    }

    // ---- issue ---------------------------------------------------------------------

    fn issue_stage(
        &mut self,
        mut trace: Option<&mut (dyn TraceSink + '_)>,
    ) -> Result<(), SimError> {
        let mut budget = self.config.issue_width;
        let mut bi = 0;
        while bi < self.su.num_blocks() && budget > 0 {
            // The ready mask holds exactly the unissued entries with no
            // operand waiting on a producer — the only candidates the
            // reference window scan could issue. Bypass timing is still
            // checked per entry (an operand written back this cycle may not
            // be usable yet without bypassing), so a set bit is necessary
            // but not sufficient. Issuing clears the entry's own bit, and
            // nothing during issue can set new bits, so the snapshot walk
            // visits the same candidates in the same (oldest-first) order.
            let mut mask = self.su.ready_mask(bi);
            while mask != 0 && budget > 0 {
                let ei = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                if self.try_issue_entry(bi, ei, trace.as_deref_mut())? {
                    budget -= 1;
                    self.stats.issued += 1;
                }
            }
            bi += 1;
        }
        let issued_now = self.config.issue_width - budget;
        self.stats.issue_histogram[issued_now] += 1;
        Ok(())
    }

    /// Attempts to issue the entry at `(bi, ei)`. Returns whether it issued.
    fn try_issue_entry(
        &mut self,
        bi: usize,
        ei: usize,
        trace: Option<&mut (dyn TraceSink + '_)>,
    ) -> Result<bool, SimError> {
        let now = self.cycle;
        let bypass = self.config.bypass;
        if self.su.state_at(bi, ei) != EntryState::Waiting {
            return Ok(false);
        }
        let ops = self.su.ops_at(bi, ei);
        let (Some(a), Some(b)) = (ops[0].value_at(now, bypass), ops[1].value_at(now, bypass))
        else {
            return Ok(false);
        };
        let insn = self.su.insn_at(bi, ei);
        let tid = self.su.block_tid(bi);
        let class = insn.fu;
        match class {
            FuClass::Load => {
                // Restricted load policy: wait until every older same-thread
                // store has its address (is in the store buffer) and no
                // older sync is pending. The per-thread ordering queue holds
                // outstanding store/sync positions oldest-first.
                let bid = self.su.block_id(bi);
                let blocked = self.memsync[tid]
                    .front()
                    .is_some_and(|&front| front < (bid, ei));
                if blocked || !self.fu.can_issue(class, now) {
                    return Ok(false);
                }
                // The effective address is thread-local; the cache, the
                // forwarding index, and the backing memory all speak
                // global (translated) addresses, so cross-thread
                // forwarding and mix cache interference are physical.
                let mut addr = effective_addr(a, insn.imm);
                let (result, fault, data_ready, memk) = match self.translate(tid, addr) {
                    Err(err) => (0, Some(err), now, MemKind::None), // speculative fault: defer
                    Ok(gaddr) => {
                        addr = gaddr;
                        let mem_value = self.mem.read(gaddr).expect("translated address is valid");
                        match self.forward_value(tid, bid, ei, gaddr) {
                            // Forwarded data bypasses the cache entirely.
                            Some(v) => (v, None, now, MemKind::Forwarded),
                            None => match self.cache.access(gaddr, now) {
                                Outcome::Blocked { .. } => return Ok(false),
                                Outcome::Hit => (mem_value, None, now, MemKind::Hit),
                                Outcome::Miss { ready_at } => {
                                    (mem_value, None, ready_at, MemKind::Miss)
                                }
                                Outcome::PendingHit { ready_at } => {
                                    (mem_value, None, ready_at, MemKind::PendingHit)
                                }
                            },
                        }
                    }
                };
                let done_at = self
                    .fu
                    .try_issue(class, now)
                    .expect("can_issue checked")
                    .max(data_ready);
                self.su.set_result(bi, ei, result);
                self.su.set_mem_addr(bi, ei, addr);
                self.su.set_dcache_miss(bi, ei, data_ready > now);
                if let Some(err) = fault {
                    self.su.set_fault(bi, ei, err);
                }
                self.su.mark_executing(bi, ei, done_at);
                self.emit_issued(bi, ei, done_at, memk, trace);
                Ok(true)
            }
            FuClass::Store => {
                // Preserve per-thread store order (forwarding relies on it)
                // and order around sync primitives. A store is in the queue
                // itself, so the front is older only if it differs from us.
                let blocked = self.memsync[tid]
                    .front()
                    .is_some_and(|&front| front < (self.su.block_id(bi), ei));
                if blocked || !self.fu.can_issue(class, now) {
                    return Ok(false);
                }
                // Stores hold their *global* address (the forwarding
                // index and store buffer match loads by address); a
                // faulting store keeps its thread-local one for precise
                // reporting.
                let mut addr = effective_addr(a, insn.imm);
                let fault = match self.translate(tid, addr) {
                    Ok(gaddr) => {
                        addr = gaddr;
                        None
                    }
                    Err(err) => Some(err),
                };
                let done_at = self.fu.try_issue(class, now).expect("can_issue checked");
                self.su.set_mem_addr(bi, ei, addr);
                self.su.set_result(bi, ei, b); // store data, held until commit
                if let Some(err) = fault {
                    self.su.set_fault(bi, ei, err);
                }
                self.su.mark_executing(bi, ei, done_at);
                self.emit_issued(bi, ei, done_at, MemKind::None, trace);
                Ok(true)
            }
            FuClass::Sync => {
                // Non-speculative: only the thread's oldest unfinished
                // instruction may execute a sync primitive.
                if self.su.any_older_unfinished(tid, bi, ei) {
                    return Ok(false);
                }
                let pc = self.su.pc_at(bi, ei);
                match insn.op {
                    Opcode::Wait => {
                        if !self.fu.can_issue(class, now) {
                            return Ok(false);
                        }
                        let gaddr =
                            self.translate(tid, a)
                                .map_err(|err| SimError::Mem { err, tid, pc })?;
                        let flag = self.mem.read(gaddr).expect("translated address is valid");
                        let satisfied = (flag as i64) >= (b as i64);
                        let done_at = self.fu.try_issue(class, now).expect("checked");
                        self.su.set_sync_satisfied(bi, ei, satisfied);
                        self.su.mark_executing(bi, ei, done_at);
                        self.emit_issued(bi, ei, done_at, MemKind::None, trace);
                        Ok(true)
                    }
                    Opcode::Post => {
                        // Validate the address now; the increment itself is
                        // applied at writeback.
                        let gaddr =
                            self.translate(tid, a)
                                .map_err(|err| SimError::Mem { err, tid, pc })?;
                        if !self.fu.can_issue(class, now) {
                            return Ok(false);
                        }
                        let done_at = self.fu.try_issue(class, now).expect("checked");
                        // Stash the (global) address in `result` for
                        // writeback's fetch_add.
                        self.su.set_result(bi, ei, gaddr);
                        self.su.mark_executing(bi, ei, done_at);
                        self.emit_issued(bi, ei, done_at, MemKind::None, trace);
                        Ok(true)
                    }
                    other => unreachable!("non-sync opcode {other} in sync class"),
                }
            }
            FuClass::Ctu => {
                if !self.fu.can_issue(class, now) {
                    return Ok(false);
                }
                let done_at = self.fu.try_issue(class, now).expect("checked");
                let (taken, target) = match insn.op {
                    Opcode::J => (true, insn.imm as usize),
                    Opcode::Halt => (false, 0),
                    op => (branch_taken(op, a, b), insn.imm as usize),
                };
                self.su.set_taken_target(bi, ei, taken, target);
                self.su.mark_executing(bi, ei, done_at);
                self.emit_issued(bi, ei, done_at, MemKind::None, trace);
                Ok(true)
            }
            _ => {
                if !self.fu.can_issue(class, now) {
                    return Ok(false);
                }
                let done_at = self.fu.try_issue(class, now).expect("checked");
                self.su
                    .set_result(bi, ei, alu_result(insn.op, a, b, insn.imm));
                self.su.mark_executing(bi, ei, done_at);
                self.emit_issued(bi, ei, done_at, MemKind::None, trace);
                Ok(true)
            }
        }
    }

    /// Emits the [`TraceEvent::Issued`] event for the entry at `(bi, ei)`.
    fn emit_issued(
        &self,
        bi: usize,
        ei: usize,
        done_at: u64,
        mem: MemKind,
        trace: Option<&mut (dyn TraceSink + '_)>,
    ) {
        if let Some(t) = trace {
            t.event(&TraceEvent::Issued {
                cycle: self.cycle,
                uid: self.su.uid_at(bi, ei),
                fu: self.su.insn_at(bi, ei).fu,
                done_at,
                mem,
            });
        }
    }

    /// Store-to-load forwarding for a load at `(lbid, lei)` (stable block
    /// id + entry index): the youngest matching store among — in search
    /// order — the load's own thread's *older* completed stores, other
    /// threads' completed **non-speculative** stores (no unresolved older
    /// control transfer of their thread), and the store buffer of committed
    /// stores. `None` falls through to the cache/memory.
    ///
    /// The scheduling unit's forwarding index holds exactly the resident
    /// completed non-faulted stores, chained youngest-first per address
    /// bucket, so the youngest-first window walk of the reference model
    /// collapses to one chain traversal. Block ids are monotone along the
    /// window, so `(block id, entry index)` ordering *is* window-position
    /// ordering.
    fn forward_value(&self, tid: usize, lbid: u64, lei: usize, addr: u64) -> Option<u64> {
        self.su
            .forward_resident(tid, lbid, lei, addr)
            .or_else(|| self.sb.forward(addr))
    }

    // ---- decode ---------------------------------------------------------------------

    fn decode_stage(&mut self, mut trace: Option<&mut (dyn TraceSink + '_)>) {
        // Slot accounting contract (see `smt_trace`): every cycle this stage
        // disposes of exactly `block_size × fetch_threads` decode slots —
        // one `block_size`-slot lane per fetch port, each slot either a
        // `Decoded` instruction or part of a `SlotsLost` with a leaf cause —
        // so the CPI stack sums to `width × cycles` by construction.
        let mut qi = 0usize;
        let mut deferred_operand: u32 = 0;
        let mut deferred_width: u32 = 0;
        for _ in 0..self.config.fetch_threads {
            self.decode_lane(
                &mut qi,
                &mut deferred_operand,
                &mut deferred_width,
                trace.as_deref_mut(),
            );
        }
    }

    /// One decode lane: takes the oldest eligible queued fetch group and
    /// admits up to `block_size` of its instructions into the scheduling
    /// unit.
    ///
    /// `qi` is the queue index the eligibility scan resumes from; a group
    /// this cycle's lanes deferred (scoreboard retry, or the undrained
    /// remainder of an oversize group) stays queued at `qi` and the cursor
    /// moves past it. `deferred_operand`/`deferred_width` record the
    /// deferring threads: per-thread decode is in order, so a younger group
    /// of a deferred thread must not enter ahead of its stalled elder.
    fn decode_lane(
        &mut self,
        qi: &mut usize,
        deferred_operand: &mut u32,
        deferred_width: &mut u32,
        trace: Option<&mut (dyn TraceSink + '_)>,
    ) {
        let width = self.config.block_size as u32;
        let deferred = *deferred_operand | *deferred_width;
        while *qi < self.fetch_queue.len() && deferred & (1 << self.fetch_queue[*qi].tid) != 0 {
            *qi += 1;
        }
        if *qi >= self.fetch_queue.len() {
            if let Some(t) = trace {
                let cause = if self.fetch_queue.is_empty() {
                    self.frontend_starve_cause()
                } else if *deferred_operand != 0 {
                    // Only in-order-held groups remain, the eldest stalled
                    // on a scoreboard retry.
                    SlotCause::OperandWait
                } else {
                    // Held behind an oversize group draining one block per
                    // cycle: decode-bandwidth fragmentation.
                    SlotCause::Fragment
                };
                t.event(&TraceEvent::SlotsLost {
                    cycle: self.cycle,
                    cause,
                    slots: width,
                });
            }
            return;
        }
        if !self.su.has_space() {
            // The paper's "scheduling unit stall": entries cannot shift, so
            // no new block enters (counted once per stalled lane).
            self.stats.su_stall_cycles += 1;
            if let Some(t) = trace {
                t.event(&TraceEvent::SlotsLost {
                    cycle: self.cycle,
                    cause: self.head_stall_cause(),
                    slots: width,
                });
            }
            return;
        }
        let block = self
            .fetch_queue
            .remove(*qi)
            .expect("eligibility scan checked the index");
        let tid = block.tid;
        let now = self.cycle;
        // The staging buffer moves out of `self` for the loop's duration so
        // decode can push to it while querying the scheduling unit; every
        // exit path puts it back, and it is never reallocated in steady
        // state (sized to one block at construction).
        let mut staged = std::mem::take(&mut self.decode_buf);
        staged.clear();
        let mut leftover: Vec<FetchedInsn> = Vec::new();
        let cswitch = self.config.fetch_policy == FetchPolicy::ConditionalSwitch;

        for (idx, f) in block.insns.iter().enumerate() {
            if staged.len() >= self.config.block_size {
                // A fetch group wider than a scheduling-unit block drains
                // one block per cycle; the remainder keeps its turn.
                leftover = block.insns[idx..].to_vec();
                break;
            }
            // Resolve sources: in-group producers first (youngest), then the
            // scheduling unit, then the committed register file. An in-group
            // producer's slot handle is known before admission via
            // `staging_handle` (the next block's row is fixed).
            let mut ops = [Operand::Unused, Operand::Unused];
            let mut wait_src = [NO_SRC, NO_SRC];
            let mut scoreboard_stall = false;
            for (k, src) in f.insn.srcs.into_iter().enumerate() {
                let Some(reg) = src else { continue };
                let in_group = staged
                    .iter()
                    .enumerate()
                    .rev()
                    .find(|(_, p)| p.insn.dest == Some(reg))
                    .map(|(pi, p)| Lookup::Pending(p.tag, self.su.staging_handle(pi)));
                let lookup = in_group.unwrap_or_else(|| self.su.lookup(tid, reg));
                ops[k] = match lookup {
                    Lookup::Available(v) => Operand::Ready {
                        value: v,
                        since: now,
                    },
                    Lookup::NotFound => Operand::Ready {
                        value: self.regfile[tid * self.window + reg.index()],
                        since: now,
                    },
                    Lookup::Pending(t, src) => {
                        if self.config.renaming == RenamingMode::Scoreboard {
                            scoreboard_stall = true;
                            break;
                        }
                        wait_src[k] = src;
                        Operand::Waiting { tag: t }
                    }
                };
            }
            if scoreboard_stall {
                leftover = block.insns[idx..].to_vec();
                break;
            }
            let tag = self
                .tags
                .alloc()
                .expect("tag pool sized to the scheduling unit");
            let mut entry = StagedEntry::new(tag, f.pc, f.insn);
            entry.uid = self.next_uid;
            self.next_uid += 1;
            entry.ops = ops;
            entry.wait_src = wait_src;
            entry.predicted_taken = f.predicted_taken;
            entry.predicted_target = f.predicted_target;
            match f.insn.op {
                Opcode::J => {
                    // Unconditional jumps resolve at decode: fix the fetch
                    // PC if the predictor sent fetch the wrong way, and
                    // record a perfect prediction so execute never squashes.
                    let target = f.insn.imm as usize;
                    let fetch_followed = f.predicted_taken && f.predicted_target == target;
                    entry.predicted_taken = true;
                    entry.predicted_target = target;
                    staged.push(entry);
                    if !fetch_followed {
                        self.iu.set_pc(tid, target);
                        // Fetch ran down the fall-through path; any of the
                        // thread's younger queued groups came from it.
                        self.drop_queued_groups(tid);
                    }
                    if cswitch && f.insn.triggers_cswitch() {
                        self.iu.signal_switch(tid);
                    }
                    // Anything after the jump in this group is dead. If a
                    // `halt` was among the dead slots, fetch saw it and
                    // stopped — undo that: the program doesn't halt here.
                    self.discard_tail(tid, &block.insns[idx + 1..]);
                    break;
                }
                Opcode::Wait => {
                    // A decoded WAIT suspends fetch for its thread until it
                    // completes, preventing the spin from flooding the unit.
                    // Groups fetched past the WAIT before decode saw it are
                    // dropped — they re-fetch from `resume_pc` when the
                    // suspension lifts, or not at all if the WAIT spins.
                    self.iu.suspend(tid, tag, f.pc + 1);
                    self.drop_queued_groups(tid);
                    if cswitch {
                        self.iu.signal_switch(tid);
                    }
                    staged.push(entry);
                    self.discard_tail(tid, &block.insns[idx + 1..]);
                    break;
                }
                Opcode::Halt => {
                    staged.push(entry);
                    break;
                }
                _ => {
                    if cswitch && f.insn.triggers_cswitch() {
                        self.iu.signal_switch(tid);
                    }
                    staged.push(entry);
                }
            }
        }

        if staged.is_empty() {
            // Scoreboard stall on the very first instruction: retry the
            // whole group next cycle (it keeps its queue position; this
            // lane's later siblings skip the thread to stay in order).
            self.decode_buf = staged;
            if let Some(t) = trace {
                let held = block.insns.len() as u32;
                t.event(&TraceEvent::SlotsLost {
                    cycle: self.cycle,
                    cause: SlotCause::OperandWait,
                    slots: held.min(width),
                });
                if width > held {
                    t.event(&TraceEvent::SlotsLost {
                        cycle: self.cycle,
                        cause: SlotCause::Fragment,
                        slots: width - held,
                    });
                }
            }
            self.fetch_queue.insert(*qi, block);
            *deferred_operand |= 1 << tid;
            *qi += 1;
            return;
        }
        let bid = self.su.push_block(tid, &staged);
        for (ei, e) in staged.iter().enumerate() {
            if e.insn.is_memsync() {
                self.memsync[tid].push_back((bid, ei));
            }
        }
        if let Some(t) = trace {
            for (ei, e) in staged.iter().enumerate() {
                t.event(&TraceEvent::Decoded {
                    cycle: self.cycle,
                    slot: &DecodedSlot {
                        uid: e.uid,
                        tid,
                        pc: e.pc,
                        insn: e.insn,
                        block: bid,
                        entry: ei,
                        fetched_at: block.fetched_at,
                    },
                });
            }
            // Slots not filled by decoded instructions: held by a
            // scoreboard-stalled remainder (retried next cycle), or simply
            // absent from a short fetch group / discarded past a
            // block-ending instruction.
            let decoded = staged.len() as u32;
            let held = (leftover.len() as u32).min(width - decoded);
            if held > 0 {
                t.event(&TraceEvent::SlotsLost {
                    cycle: self.cycle,
                    cause: SlotCause::OperandWait,
                    slots: held,
                });
            }
            if width > decoded + held {
                t.event(&TraceEvent::SlotsLost {
                    cycle: self.cycle,
                    cause: SlotCause::Fragment,
                    slots: width - decoded - held,
                });
            }
        }
        staged.clear();
        self.decode_buf = staged;
        if !leftover.is_empty() {
            // The undrained remainder keeps the group's queue position: one
            // scheduling-unit block per group per cycle. The drained
            // original's storage goes back to the fetcher.
            self.fetch_queue.insert(
                *qi,
                FetchedBlock {
                    tid,
                    insns: leftover,
                    fetched_at: block.fetched_at,
                },
            );
            self.iu.recycle(block.insns);
            *deferred_width |= 1 << tid;
            *qi += 1;
        } else {
            // The consumed fetch group's storage goes back to the fetcher.
            self.iu.recycle(block.insns);
        }
    }

    /// Drops every queued fetch group of `tid` — decode redirected or
    /// suspended the thread, so fetch's younger run-ahead groups are stale.
    /// A `halt` fetch stopped on inside a dropped group is revoked, like
    /// [`discard_tail`](Self::discard_tail): the thread re-fetches from its
    /// corrected PC and re-encounters any real halt there.
    fn drop_queued_groups(&mut self, tid: usize) {
        let mut saw_halt = false;
        let mut i = 0;
        while i < self.fetch_queue.len() {
            if self.fetch_queue[i].tid == tid {
                let b = self.fetch_queue.remove(i).expect("index in bounds");
                saw_halt |= b.insns.iter().any(|f| f.insn.op == Opcode::Halt);
                self.iu.recycle(b.insns);
            } else {
                i += 1;
            }
        }
        if saw_halt {
            self.iu.clear_fetch_halted(tid);
        }
    }

    /// Why the decode frontend has nothing to offer this cycle: every
    /// unretired thread is parked on a `WAIT` (synchronization), or fetch
    /// simply produced no block (thread count, wasted fetch slots, drain).
    fn frontend_starve_cause(&self) -> SlotCause {
        let mut unretired = 0usize;
        let mut suspended = 0usize;
        for tid in 0..self.config.threads {
            if !self.iu.is_retired(tid) {
                unretired += 1;
                if self.iu.is_suspended(tid) {
                    suspended += 1;
                }
            }
        }
        if unretired > 0 && suspended == unretired {
            SlotCause::SyncWait
        } else {
            SlotCause::FetchStarved
        }
    }

    /// Why the scheduling unit is full: classifies the oldest unfinished
    /// instruction of the bottom (oldest) block — the head of the machine —
    /// since nothing can shift until it leaves. Called only on a decode
    /// stall with a full unit, so a bottom block exists.
    fn head_stall_cause(&self) -> SlotCause {
        let now = self.cycle;
        let Some(ei) = self.su.first_unfinished(0) else {
            // Everything in the bottom block is done but it has not left:
            // commit bandwidth (one block per cycle) or a store stuck on a
            // full store buffer.
            return if self.sb.len() == self.sb.capacity() {
                SlotCause::StoreBufFull
            } else {
                SlotCause::SuFull
            };
        };
        let insn = self.su.insn_at(0, ei);
        match self.su.state_at(0, ei) {
            EntryState::Waiting => {
                if !self.su.operands_ready_at(0, ei, now, self.config.bypass) {
                    return SlotCause::OperandWait;
                }
                match insn.fu {
                    FuClass::Sync => SlotCause::SyncWait,
                    class @ (FuClass::Load | FuClass::Store) => {
                        let older_memsync = self.memsync[self.su.block_tid(0)]
                            .front()
                            .is_some_and(|&front| front < (self.su.block_id(0), ei));
                        if older_memsync {
                            SlotCause::MemOrder
                        } else if class == FuClass::Load
                            && self.fu.can_issue(class, now)
                            && self.cache.refill_busy(now)
                        {
                            // The FU would take it, but every MSHR is busy,
                            // so the cache rejects new accesses.
                            SlotCause::DCachePort
                        } else {
                            SlotCause::FuBusy
                        }
                    }
                    _ => SlotCause::FuBusy,
                }
            }
            EntryState::Executing { .. } => {
                if insn.fu == FuClass::Load && self.su.dcache_miss_at(0, ei) {
                    SlotCause::DCacheMiss
                } else if insn.fu == FuClass::Sync {
                    SlotCause::SyncWait
                } else {
                    SlotCause::FuBusy
                }
            }
            EntryState::Done => unreachable!("filtered above"),
        }
    }

    /// Discards the unreached tail of a decode group (instructions after a
    /// jump or a suspending `WAIT`). If fetch had stopped on a `halt` in
    /// that tail, the stop is revoked so the thread keeps fetching.
    fn discard_tail(&mut self, tid: usize, tail: &[FetchedInsn]) {
        if tail.iter().any(|f| f.insn.op == Opcode::Halt) {
            self.iu.clear_fetch_halted(tid);
        }
    }

    // ---- fetch ----------------------------------------------------------------------

    fn fetch_stage(&mut self) {
        if self.fetch_suppressed {
            return; // drain(): the front end is parked
        }
        let ports = self.config.fetch_threads;
        if self.fetch_queue.len() >= ports {
            return; // decode is backed up; the queue holds a block per port
        }
        // Speculation-depth limit: recompute every thread's stall flag from
        // the scheduling unit before any port selects. The flags are
        // transient by construction — nothing between here and selection
        // changes the unresolved-branch population.
        if self.config.spec_depth > 0 {
            for tid in 0..self.config.threads {
                let deep = self.su.unresolved_branches(tid) >= self.config.spec_depth as u32;
                self.iu.set_spec_stall(tid, deep);
            }
        }
        // The ICOUNT signal: per-thread instructions resident in the
        // scheduling unit plus those queued ahead of decode. Computed only
        // when the policy reads it, so the other policies pay nothing; the
        // scratch vector is owned by the simulator and reused every cycle.
        let icount = self.config.fetch_policy == FetchPolicy::Icount;
        if icount {
            self.occupancy_buf.iter_mut().for_each(|c| *c = 0);
            for bi in 0..self.su.num_blocks() {
                self.occupancy_buf[self.su.block_tid(bi)] += self.su.block_len(bi) as u32;
            }
            for b in &self.fetch_queue {
                self.occupancy_buf[b.tid] += b.insns.len() as u32;
            }
        }
        // Each port serves a distinct thread this cycle.
        let mut granted: u32 = 0;
        for _ in self.fetch_queue.len()..ports {
            let occupancy: &[u32] = if icount { &self.occupancy_buf } else { &[] };
            let Some(tid) = self.iu.select_fetch(occupancy, granted) else {
                self.stats.fetch_idle_cycles += 1;
                continue;
            };
            granted |= 1 << tid;
            match self
                .iu
                .fetch_block(tid, self.program_of(tid), &mut self.predictor)
            {
                Some(mut block) => {
                    block.fetched_at = self.cycle;
                    self.stats.fetched_blocks += 1;
                    if icount {
                        self.occupancy_buf[tid] += block.insns.len() as u32;
                    }
                    self.fetch_queue.push_back(block);
                }
                None => self.stats.fetch_idle_cycles += 1,
            }
        }
    }

    /// Data-cache counters so far (convenience for tests).
    #[must_use]
    pub fn cache_stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    // ---- checkpoint / restore -------------------------------------------------

    /// Captures the complete machine state as a versioned [`Snapshot`].
    ///
    /// The snapshot plus the same configuration and program fully
    /// determine the machine: [`restore`](Self::restore) followed by
    /// [`run`](Self::run) is bit-identical to never having stopped —
    /// same cycle count, same statistics, same architectural state,
    /// same commit stream.
    ///
    /// Serialized: every stateful structure (scheduling unit, fetch
    /// unit, predictor, functional units, tag allocator, cache, store
    /// buffer, fetch buffer, statistics, register file) plus memory as
    /// a sparse delta against the program's data image. Derived state
    /// (renaming indexes, ordering queues, the forwarding index) is
    /// recomputed on restore.
    #[must_use]
    pub fn checkpoint(&self) -> Snapshot {
        let mut w = Writer::new();
        w.section(sec::CORE);
        w.put_u64(self.cycle);
        w.put_u64(self.next_uid);
        w.put_usize(self.regfile.len());
        for &v in &self.regfile {
            w.put_u64(v);
        }
        w.section(sec::SU);
        self.su.save(&mut w);
        w.section(sec::FETCH);
        self.iu.save(&mut w);
        w.section(sec::PREDICTOR);
        self.predictor.save(&mut w);
        w.section(sec::FU);
        self.fu.save(&mut w);
        w.section(sec::TAGS);
        self.tags.save(&mut w);
        w.section(sec::CACHE);
        self.cache.save(&mut w);
        w.section(sec::STORE_BUFFER);
        self.sb.save(&mut w);
        w.section(sec::MEMORY);
        self.mem.save_delta(&self.baseline_words(), &mut w);
        w.section(sec::FETCH_BUFFER);
        w.put_usize(self.fetch_queue.len());
        for b in &self.fetch_queue {
            w.put_usize(b.tid);
            w.put_u64(b.fetched_at);
            w.put_usize(b.insns.len());
            for f in &b.insns {
                // Like an SU entry, the decoded instruction is
                // recovered from the program text via its pc.
                w.put_usize(f.pc);
                w.put_bool(f.predicted_taken);
                w.put_usize(f.predicted_target);
            }
        }
        w.section(sec::STATS);
        save_stats(&self.stats, &mut w);
        Snapshot {
            config_hash: config_identity(&self.config),
            program_hashes: self.identity_vec(),
            cycle: self.cycle,
            warm: None,
            payload: w.into_bytes(),
        }
    }

    /// Whether the pipeline is empty (scheduling unit, store buffer, and
    /// fetch queue all drained) — the machine state a warm snapshot can
    /// capture exactly. A finished machine is quiescent too.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.su.is_empty() && self.sb.is_empty() && self.fetch_queue.is_empty()
    }

    /// Parks the machine at a quiescent point: suppresses fetch and steps
    /// until every in-flight instruction has left the pipeline (retired,
    /// squashed, or spin-discarded) and the store buffer has written back.
    /// Execution stays exact — drain only stops *new* fetch, so the
    /// machine lands at an architecturally precise point a few cycles past
    /// where it was. Threads spinning on an unsatisfied `WAIT` drain too:
    /// the poll retires as a spin and the thread re-fetches it after a
    /// fork or resume.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run) — the watchdog still applies.
    pub fn drain(&mut self) -> Result<(), SimError> {
        self.fetch_suppressed = true;
        let result = (|| {
            while !self.is_quiescent() {
                if self.cycle >= self.config.max_cycles {
                    return Err(SimError::Watchdog {
                        cycles: self.config.max_cycles,
                    });
                }
                self.step_inner(None, None)?;
            }
            Ok(())
        })();
        self.fetch_suppressed = false;
        result
    }

    /// Captures a **warm** snapshot: only the configuration-independent
    /// state — register file, per-thread architectural PCs and retirement,
    /// and the memory delta. The machine must be [quiescent] (normally
    /// via [`drain`](Self::drain)) so that this *is* the complete machine
    /// state; everything microarchitectural (scheduling unit, caches,
    /// predictor, BTB, functional units, fetch policy cursors) is empty
    /// or cold by construction and is rebuilt cold by
    /// [`fork_warm`](Self::fork_warm), then rewarmed inside the forked
    /// run's own measurement window.
    ///
    /// `relaxed` names the configuration fields a fork may change (see
    /// [`warm`]); it is sorted and deduplicated into the snapshot.
    ///
    /// # Errors
    ///
    /// [`SimError::Snapshot`] if the machine is not quiescent or
    /// `relaxed` contains an unknown field id.
    ///
    /// [quiescent]: Self::is_quiescent
    pub fn checkpoint_warm(&self, relaxed: &[u32]) -> Result<Snapshot, SimError> {
        if !self.is_quiescent() {
            return Err(SimError::Snapshot(
                "warm checkpoint of a non-quiescent machine; call drain() first".into(),
            ));
        }
        let mut relaxed: Vec<u32> = relaxed.to_vec();
        relaxed.sort_unstable();
        relaxed.dedup();
        if let Some(&id) = relaxed.iter().find(|&&id| !warm::is_known(id)) {
            return Err(SimError::Snapshot(format!(
                "unknown relaxed configuration field id {id}"
            )));
        }
        let mut w = Writer::new();
        w.section(wsec::ARCH);
        w.put_usize(self.regfile.len());
        for &v in &self.regfile {
            w.put_u64(v);
        }
        w.put_usize(self.config.threads);
        for tid in 0..self.config.threads {
            w.put_usize(self.iu.pc(tid));
            w.put_bool(self.iu.is_retired(tid));
        }
        w.section(wsec::MEMORY);
        self.mem.save_delta(&self.baseline_words(), &mut w);
        Ok(Snapshot {
            config_hash: config_identity(&self.config),
            program_hashes: self.identity_vec(),
            cycle: self.cycle,
            warm: Some(smt_checkpoint::WarmIdentity {
                warm_hash: warm::identity(&self.config, &relaxed),
                relaxed,
            }),
            payload: w.into_bytes(),
        })
    }

    /// Builds a fresh machine under `config` and seeds it with a warm
    /// snapshot's architectural state: memory, register file, and each
    /// thread's PC and retirement carry over; everything else (caches,
    /// predictor, BTB, functional units, scheduling unit, fetch cursors,
    /// statistics) starts cold, and the cycle counter restarts at zero —
    /// the forked run measures exactly its own window.
    ///
    /// `config` may differ from the snapshot's source configuration only
    /// in the snapshot's relaxed fields; the program identity must match
    /// exactly.
    ///
    /// # Errors
    ///
    /// * [`SimError::Snapshot`] if the snapshot has no warm identity
    ///   (exact snapshots must go through [`restore`](Self::restore)),
    ///   names an unknown relaxed field, differs from `config` in a
    ///   non-relaxed field, was taken of a different program, or its
    ///   payload fails to decode;
    /// * whatever [`try_new`](Self::try_new) reports.
    pub fn fork_warm(
        config: SimConfig,
        program: &'p Program,
        snapshot: &Snapshot,
    ) -> Result<Self, SimError> {
        let mut sim = Self::try_new(config, program)?;
        sim.check_warm_identity(snapshot)?;
        sim.apply_warm(snapshot)
            .map_err(|e| SimError::Snapshot(e.to_string()))?;
        Ok(sim)
    }

    /// [`fork_warm`](Self::fork_warm) for a heterogeneous mix. The
    /// snapshot's per-thread identity vector must match the mix position
    /// by position.
    ///
    /// # Errors
    ///
    /// Same as [`fork_warm`](Self::fork_warm), plus [`SimError::Program`]
    /// for a mix of the wrong arity.
    pub fn fork_warm_mix(
        config: SimConfig,
        programs: &[&'p Program],
        snapshot: &Snapshot,
    ) -> Result<Self, SimError> {
        let mut sim = Self::try_new_mix(config, programs)?;
        sim.check_warm_identity(snapshot)?;
        sim.apply_warm(snapshot)
            .map_err(|e| SimError::Snapshot(e.to_string()))?;
        Ok(sim)
    }

    /// The fork-time identity gate: the snapshot must carry a warm
    /// identity whose hash matches this machine's configuration under the
    /// snapshot's own relaxed list, and the program identity must match
    /// exactly.
    fn check_warm_identity(&self, snapshot: &Snapshot) -> Result<(), SimError> {
        let Some(w) = &snapshot.warm else {
            return Err(SimError::Snapshot(
                "snapshot has no warm identity; use restore() for exact resumption".into(),
            ));
        };
        if let Some(&id) = w.relaxed.iter().find(|&&id| !warm::is_known(id)) {
            return Err(SimError::Snapshot(format!(
                "warm snapshot relaxes unknown configuration field id {id}"
            )));
        }
        let want = warm::identity(&self.config, &w.relaxed);
        if w.warm_hash != want {
            return Err(SimError::Snapshot(format!(
                "warm identity {:#018x} does not match {want:#018x}: the target \
                 configuration differs in a field the snapshot did not relax",
                w.warm_hash
            )));
        }
        let want = self.identity_vec();
        if snapshot.program_hashes != want {
            return Err(SimError::Snapshot(format!(
                "warm snapshot was taken of program(s) {:#018x?}, not {want:#018x?}",
                snapshot.program_hashes
            )));
        }
        Ok(())
    }

    /// Decodes a warm payload into a freshly built machine. Only the
    /// architectural state is overwritten; `self` keeps its cold
    /// microarchitecture, zero cycle counter, and zeroed statistics.
    fn apply_warm(&mut self, snapshot: &Snapshot) -> Result<(), DecodeError> {
        let malformed = DecodeError::Malformed;
        let mut r = Reader::new(&snapshot.payload);
        r.expect_section(wsec::ARCH)?;
        let n = r.take_usize()?;
        if n != self.regfile.len() {
            return Err(malformed(format!(
                "register file of {n} words, partition holds {}",
                self.regfile.len()
            )));
        }
        for slot in &mut self.regfile {
            *slot = r.take_u64()?;
        }
        let threads = r.take_usize()?;
        if threads != self.config.threads {
            return Err(malformed(format!(
                "thread state for {threads} threads, config has {}",
                self.config.threads
            )));
        }
        for tid in 0..threads {
            let pc = r.take_usize()?;
            let retired = r.take_bool()?;
            if retired {
                self.iu.retire(tid);
            } else {
                if self.program_of(tid).fetch_decoded(pc).is_none() {
                    return Err(malformed(format!(
                        "thread {tid} parked at pc {pc}, outside its program"
                    )));
                }
                self.iu.set_pc(tid, pc);
            }
        }
        r.expect_section(wsec::MEMORY)?;
        self.mem = MainMemory::restore_delta(&self.baseline_words(), &mut r)?;
        r.finish()?;
        Ok(())
    }

    /// Rebuilds a simulator from a [`checkpoint`](Self::checkpoint)
    /// taken under the same configuration and program.
    ///
    /// # Errors
    ///
    /// * [`SimError::Snapshot`] if the snapshot's identity hashes do
    ///   not match `config`/`program`, or its payload fails to decode;
    /// * whatever [`try_new`](Self::try_new) reports for the
    ///   configuration/program pair itself.
    pub fn restore(
        config: SimConfig,
        program: &'p Program,
        snapshot: &Snapshot,
    ) -> Result<Self, SimError> {
        if snapshot.warm.is_some() {
            return Err(SimError::Snapshot(
                "warm snapshot holds architectural state only; use fork_warm()".into(),
            ));
        }
        let want = config_identity(&config);
        if snapshot.config_hash != want {
            return Err(SimError::Snapshot(format!(
                "snapshot was taken under config {:#018x}, not {want:#018x}",
                snapshot.config_hash
            )));
        }
        let want = program_identity(program);
        if snapshot.program_hashes.as_slice() != [want] {
            return Err(SimError::Snapshot(format!(
                "snapshot was taken of program(s) {:#018x?}, not [{want:#018x}]",
                snapshot.program_hashes
            )));
        }
        let mut sim = Self::try_new(config, program)?;
        sim.apply_snapshot(snapshot)
            .map_err(|e| SimError::Snapshot(e.to_string()))?;
        Ok(sim)
    }

    /// Rebuilds a simulator from a snapshot of a heterogeneous mix taken
    /// under the same configuration and per-thread programs. The
    /// snapshot's identity vector must match the mix **position by
    /// position** — restoring under a permuted or partially swapped mix
    /// fails closed.
    ///
    /// # Errors
    ///
    /// Same as [`restore`](Self::restore), plus
    /// [`SimError::Program`] for a mix of the wrong arity.
    pub fn restore_mix(
        config: SimConfig,
        programs: &[&'p Program],
        snapshot: &Snapshot,
    ) -> Result<Self, SimError> {
        if snapshot.warm.is_some() {
            return Err(SimError::Snapshot(
                "warm snapshot holds architectural state only; use fork_warm_mix()".into(),
            ));
        }
        let want = config_identity(&config);
        if snapshot.config_hash != want {
            return Err(SimError::Snapshot(format!(
                "snapshot was taken under config {:#018x}, not {want:#018x}",
                snapshot.config_hash
            )));
        }
        let mut sim = Self::try_new_mix(config, programs)?;
        let want = sim.identity_vec();
        if snapshot.program_hashes != want {
            return Err(SimError::Snapshot(format!(
                "snapshot was taken of program(s) {:#018x?}, not {want:#018x?}",
                snapshot.program_hashes
            )));
        }
        sim.apply_snapshot(snapshot)
            .map_err(|e| SimError::Snapshot(e.to_string()))?;
        Ok(sim)
    }

    /// Overwrites a freshly constructed machine with the snapshot's
    /// state and recomputes everything the snapshot omits: the memory
    /// ordering queues and forwarding index (rescanned from the
    /// restored window), the tag allocator's resident set, and the
    /// renaming indexes (rebuilt inside [`SchedulingUnit::restore`]).
    fn apply_snapshot(&mut self, snapshot: &Snapshot) -> Result<(), DecodeError> {
        let malformed = DecodeError::Malformed;
        let decoded: Vec<&[smt_isa::DecodedInsn]> = (0..self.config.threads)
            .map(|tid| self.program_of(tid).decoded())
            .collect();
        let mut r = Reader::new(&snapshot.payload);
        r.expect_section(sec::CORE)?;
        self.cycle = r.take_u64()?;
        if self.cycle != snapshot.cycle {
            return Err(malformed(format!(
                "header cycle {} disagrees with payload cycle {}",
                snapshot.cycle, self.cycle
            )));
        }
        self.next_uid = r.take_u64()?;
        let n = r.take_usize()?;
        if n != self.regfile.len() {
            return Err(malformed(format!(
                "register file of {n} words, partition holds {}",
                self.regfile.len()
            )));
        }
        for slot in &mut self.regfile {
            *slot = r.take_u64()?;
        }
        r.expect_section(sec::SU)?;
        let mut su = SchedulingUnit::restore(
            self.config.su_blocks(),
            self.config.block_size,
            &mut r,
            &decoded,
        )?;
        su.reserve_threads(self.config.threads);
        r.expect_section(sec::FETCH)?;
        self.iu = InstructionUnit::restore(
            self.config.threads,
            self.config.fetch_policy,
            self.config.fetch_width,
            self.config.aligned_fetch,
            &mut r,
        )?;
        r.expect_section(sec::PREDICTOR)?;
        self.predictor = Predictor::restore(self.config.predictor, self.config.threads, &mut r)?;
        r.expect_section(sec::FU)?;
        self.fu = FuPool::restore(self.config.fu, &mut r)?;
        r.expect_section(sec::TAGS)?;
        // Exactly the resident window entries hold live tags: commit
        // frees a store's tag before the store-buffer entry drains, so
        // buffered stores reference already-freed ids.
        let resident = su.resident_tags();
        self.tags = TagAllocator::restore(self.config.su_depth, &mut r, &resident)?;
        r.expect_section(sec::CACHE)?;
        self.cache = DataCache::restore(self.config.cache, &mut r)?;
        r.expect_section(sec::STORE_BUFFER)?;
        self.sb = StoreBuffer::restore(self.config.store_buffer, &mut r)?;
        r.expect_section(sec::MEMORY)?;
        self.mem = MainMemory::restore_delta(&self.baseline_words(), &mut r)?;
        r.expect_section(sec::FETCH_BUFFER)?;
        let queued = r.take_usize()?;
        if queued > self.config.fetch_threads {
            return Err(malformed(format!(
                "{queued} queued fetch groups with {} fetch ports",
                self.config.fetch_threads
            )));
        }
        self.fetch_queue = VecDeque::with_capacity(self.config.fetch_threads);
        for _ in 0..queued {
            let tid = r.take_usize()?;
            if tid >= self.config.threads {
                return Err(malformed(format!(
                    "fetch group owned by thread {tid} of {}",
                    self.config.threads
                )));
            }
            let fetched_at = r.take_u64()?;
            let n = r.take_usize()?;
            if n == 0 || n > self.config.fetch_width {
                return Err(malformed(format!(
                    "fetch group of {n} instructions (fetch width {})",
                    self.config.fetch_width
                )));
            }
            let mut insns = Vec::with_capacity(n);
            for _ in 0..n {
                let pc = r.take_usize()?;
                let insn = *decoded[tid].get(pc).ok_or_else(|| {
                    DecodeError::Malformed(format!("fetch-group pc {pc} outside the program"))
                })?;
                let predicted_taken = r.take_bool()?;
                let predicted_target = r.take_usize()?;
                insns.push(FetchedInsn {
                    pc,
                    insn,
                    predicted_taken,
                    predicted_target,
                });
            }
            self.fetch_queue.push_back(FetchedBlock {
                tid,
                insns,
                fetched_at,
            });
        }
        r.expect_section(sec::STATS)?;
        self.stats = restore_stats(&mut r)?;
        if self.stats.committed.len() != self.config.threads {
            return Err(malformed(format!(
                "commit counters for {} threads, config has {}",
                self.stats.committed.len(),
                self.config.threads
            )));
        }
        if self.stats.issue_histogram.len() != self.config.issue_width + 1 {
            return Err(malformed(format!(
                "issue histogram of {} bins for issue width {}",
                self.stats.issue_histogram.len(),
                self.config.issue_width
            )));
        }
        r.finish()?;

        // Rebuild the derived cross-references from the restored window
        // (the scheduling unit rebuilt its own indexes — renaming,
        // waiters, forwarding — inside `SchedulingUnit::restore`).
        self.memsync = vec![VecDeque::with_capacity(self.config.su_depth); self.config.threads];
        for bi in 0..su.num_blocks() {
            let tid = su.block_tid(bi);
            if tid >= self.config.threads {
                return Err(malformed(format!(
                    "resident block of thread {tid} in a {}-thread run",
                    self.config.threads
                )));
            }
            let bid = su.block_id(bi);
            for ei in 0..su.block_len(bi) {
                // Outstanding (not yet written back) store/sync entries
                // populate the per-thread ordering queues; blocks iterate
                // oldest-first, so each queue comes out age-ordered.
                if su.insn_at(bi, ei).is_memsync() && !su.is_done_at(bi, ei) {
                    self.memsync[tid].push_back((bid, ei));
                }
            }
        }
        self.su = su;
        Ok(())
    }

    /// Renders the full machine state for debugging (threads, fetch buffer,
    /// every scheduling-unit entry, store buffer).
    #[must_use]
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "cycle {}", self.cycle);
        for tid in 0..self.config.threads {
            let _ = writeln!(
                out,
                "  thread {tid}: pc={} retired={} fetch_halted={} suspended={}",
                self.iu.pc(tid),
                self.iu.is_retired(tid),
                self.iu.is_fetch_halted(tid),
                self.iu.is_suspended(tid),
            );
        }
        if self.fetch_queue.is_empty() {
            let _ = writeln!(out, "  fetch queue: empty");
        }
        for b in &self.fetch_queue {
            let _ = writeln!(
                out,
                "  fetch queue: tid {} × {} insns @pc {}",
                b.tid,
                b.insns.len(),
                b.insns[0].pc
            );
        }
        for bi in 0..self.su.num_blocks() {
            let _ = writeln!(
                out,
                "  block {bi} (id {}, tid {}):",
                self.su.block_id(bi),
                self.su.block_tid(bi)
            );
            for ei in 0..self.su.block_len(bi) {
                let ready: Vec<bool> = self
                    .su
                    .ops_at(bi, ei)
                    .iter()
                    .map(|o| o.value_at(self.cycle, true).is_some())
                    .collect();
                let _ = writeln!(
                    out,
                    "    {} pc={} `{}` state={:?} ops_ready={:?} fault={:?}",
                    self.su.tag_at(bi, ei),
                    self.su.pc_at(bi, ei),
                    self.su.insn_at(bi, ei),
                    self.su.state_at(bi, ei),
                    ready,
                    self.su.fault_at(bi, ei)
                );
            }
        }
        let _ = writeln!(
            out,
            "  store buffer: {}/{} entries",
            self.sb.len(),
            self.sb.capacity()
        );
        out
    }
}

/// Serializes every [`SimStats`] field. The cache and functional-unit
/// aggregates are copied from their owning structures only by
/// [`Simulator::run`]'s final fix-up, but they are carried anyway so a
/// snapshot of an already-finished machine round-trips exactly.
fn save_stats(stats: &SimStats, w: &mut Writer) {
    w.put_u64(stats.cycles);
    w.put_usize(stats.committed.len());
    for &c in &stats.committed {
        w.put_u64(c);
    }
    w.put_u64(stats.fetched_blocks);
    w.put_u64(stats.fetch_idle_cycles);
    w.put_u64(stats.su_stall_cycles);
    w.put_u64(stats.issued);
    w.put_u64(stats.store_buffer_full_stalls);
    w.put_u64(stats.wait_spin_cycles);
    w.put_u64(stats.squashed);
    w.put_u64(stats.su_occupancy_sum);
    w.put_u64(stats.branches.resolved);
    w.put_u64(stats.branches.mispredicted);
    w.put_u64(stats.cache.accesses);
    w.put_u64(stats.cache.hits);
    w.put_u64(stats.cache.misses);
    w.put_u64(stats.cache.blocked);
    w.put_usize(stats.fu.busy_cycles.len());
    for (class, per_unit) in &stats.fu.busy_cycles {
        let ci = FuClass::ALL
            .iter()
            .position(|c| c == class)
            .expect("every class is in FuClass::ALL");
        w.put_usize(ci);
        w.put_usize(per_unit.len());
        for &busy in per_unit {
            w.put_u64(busy);
        }
    }
    w.put_usize(stats.issue_histogram.len());
    for &bin in &stats.issue_histogram {
        w.put_u64(bin);
    }
}

fn restore_stats(r: &mut Reader<'_>) -> Result<SimStats, DecodeError> {
    let cycles = r.take_u64()?;
    let n = r.take_usize()?;
    let mut committed = Vec::with_capacity(n.min(MAX_THREADS));
    for _ in 0..n {
        committed.push(r.take_u64()?);
    }
    let fetched_blocks = r.take_u64()?;
    let fetch_idle_cycles = r.take_u64()?;
    let su_stall_cycles = r.take_u64()?;
    let issued = r.take_u64()?;
    let store_buffer_full_stalls = r.take_u64()?;
    let wait_spin_cycles = r.take_u64()?;
    let squashed = r.take_u64()?;
    let su_occupancy_sum = r.take_u64()?;
    let branches = crate::stats::BranchStats {
        resolved: r.take_u64()?,
        mispredicted: r.take_u64()?,
    };
    let cache = CacheStats {
        accesses: r.take_u64()?,
        hits: r.take_u64()?,
        misses: r.take_u64()?,
        blocked: r.take_u64()?,
    };
    let classes = r.take_usize()?;
    if classes > FuClass::ALL.len() {
        return Err(DecodeError::Malformed(format!(
            "{classes} functional-unit classes, machine has {}",
            FuClass::ALL.len()
        )));
    }
    let mut busy_cycles = Vec::with_capacity(classes);
    for _ in 0..classes {
        let ci = r.take_usize()?;
        let class = *FuClass::ALL.get(ci).ok_or_else(|| {
            DecodeError::Malformed(format!("functional-unit class index {ci} out of range"))
        })?;
        let units = r.take_usize()?;
        let mut per_unit = Vec::with_capacity(units.min(64));
        for _ in 0..units {
            per_unit.push(r.take_u64()?);
        }
        busy_cycles.push((class, per_unit));
    }
    let bins = r.take_usize()?;
    let mut issue_histogram = Vec::with_capacity(bins.min(64));
    for _ in 0..bins {
        issue_histogram.push(r.take_u64()?);
    }
    Ok(SimStats {
        cycles,
        committed,
        fetched_blocks,
        fetch_idle_cycles,
        su_stall_cycles,
        issued,
        store_buffer_full_stalls,
        wait_spin_cycles,
        squashed,
        su_occupancy_sum,
        branches,
        cache,
        fu: FuUsage { busy_cycles },
        issue_histogram,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CommitPolicy;
    use smt_isa::builder::ProgramBuilder;
    use smt_isa::interp::Interp;

    fn run_and_check(program: &Program, config: SimConfig) -> SimStats {
        let threads = config.threads;
        let mut sim = Simulator::new(config, program);
        let stats = sim.run().expect("run completes");
        let mut interp = Interp::new(program, threads);
        interp.run().expect("reference completes");
        assert_eq!(
            sim.memory().words(),
            interp.mem_words(),
            "architectural memory must match the reference interpreter"
        );
        assert_eq!(
            sim.reg_file(),
            interp.reg_file(),
            "register file must match the reference interpreter"
        );
        stats
    }

    fn sum_program() -> Program {
        // Each thread sums 1..=20 into out[tid].
        let mut b = ProgramBuilder::new();
        let out = b.alloc_zeroed(6 * 8);
        let [sum, i, limit, addr] = b.regs();
        b.li(sum, 0);
        b.li(i, 1);
        b.li(limit, 21);
        let top = b.label();
        b.bind(top);
        b.add(sum, sum, i);
        b.addi(i, i, 1);
        b.blt(i, limit, top);
        b.slli(addr, b.tid_reg(), 3);
        b.addi(addr, addr, out as i32);
        b.sd(sum, addr, 0);
        b.halt();
        b.build(6).unwrap()
    }

    #[test]
    fn single_thread_loop_matches_reference() {
        let p = sum_program();
        let stats = run_and_check(&p, SimConfig::default().with_threads(1));
        assert!(stats.cycles > 0);
        assert!(
            stats.committed_total() > 60,
            "loop body commits ~20×3 instructions"
        );
    }

    #[test]
    fn four_threads_match_reference_under_every_fetch_policy() {
        let p = sum_program();
        for policy in [
            FetchPolicy::TrueRoundRobin,
            FetchPolicy::MaskedRoundRobin,
            FetchPolicy::ConditionalSwitch,
            FetchPolicy::Icount,
        ] {
            let stats = run_and_check(&p, SimConfig::default().with_fetch_policy(policy));
            assert_eq!(stats.committed.len(), 4);
            assert!(
                stats.committed.iter().all(|&c| c > 0),
                "{policy}: all threads commit"
            );
        }
    }

    #[test]
    fn commit_policies_agree_architecturally() {
        let p = sum_program();
        let flexible = run_and_check(&p, SimConfig::default());
        let lowest = run_and_check(
            &p,
            SimConfig::default().with_commit_policy(CommitPolicy::LowestOnly),
        );
        assert_eq!(flexible.committed_total(), lowest.committed_total());
    }

    #[test]
    fn multithreading_beats_single_thread_on_parallel_work() {
        // A compute-heavy kernel with long-latency FP ops: four threads
        // should clearly outperform one thread running the same per-thread
        // work (each thread does identical work, so 4 threads do 4× the
        // total work; per-unit-of-work cycles must drop).
        let mut b = ProgramBuilder::new();
        let out = b.alloc_zeroed(6 * 8);
        let [x, y, i, limit, addr] = b.regs();
        b.lif(x, 1.0);
        b.lif(y, 1.000001);
        b.li(i, 0);
        b.li(limit, 50);
        let top = b.label();
        b.bind(top);
        b.fmul(x, x, y);
        b.fadd(x, x, y);
        b.fsub(x, x, y);
        b.addi(i, i, 1);
        b.blt(i, limit, top);
        b.slli(addr, b.tid_reg(), 3);
        b.addi(addr, addr, out as i32);
        b.sd(x, addr, 0);
        b.halt();
        let p = b.build(4).unwrap();

        let st = run_and_check(&p, SimConfig::default().with_threads(1));
        let mt = run_and_check(&p, SimConfig::default().with_threads(4));
        // 4 threads, ~4× the committed work, in well under 4× the cycles.
        assert!(mt.committed_total() > 3 * st.committed_total());
        let st_cpi = st.cycles as f64 / st.committed_total() as f64;
        let mt_cpi = mt.cycles as f64 / mt.committed_total() as f64;
        assert!(
            mt_cpi < st_cpi * 0.9,
            "expected ≥10% CPI gain from SMT: single {st_cpi:.3}, multi {mt_cpi:.3}"
        );
    }

    #[test]
    fn wait_post_synchronization_runs_to_completion() {
        // tid 0 produces, others consume through a flag.
        let mut b = ProgramBuilder::new();
        let flag = b.alloc_zeroed(8);
        let slot = b.alloc_zeroed(8);
        let out = b.alloc_zeroed(6 * 8);
        let [fl, sl, v, one, zero, addr] = b.regs();
        b.li(fl, flag as i64);
        b.li(sl, slot as i64);
        b.li(one, 1);
        b.li(zero, 0);
        let consumer = b.label();
        let store = b.label();
        b.bne(b.tid_reg(), zero, consumer);
        b.li(v, 777);
        b.sd(v, sl, 0);
        b.post(fl);
        b.j(store);
        b.bind(consumer);
        b.wait(fl, one);
        b.bind(store);
        b.ld(v, sl, 0);
        b.slli(addr, b.tid_reg(), 3);
        b.addi(addr, addr, out as i32);
        b.sd(v, addr, 0);
        b.halt();
        let p = b.build(3).unwrap();

        let stats = run_and_check(&p, SimConfig::default().with_threads(3));
        assert!(stats.wait_spin_cycles > 0 || stats.cycles > 0);
    }

    #[test]
    fn watchdog_catches_deadlock() {
        let mut b = ProgramBuilder::new();
        let flag = b.alloc_zeroed(8);
        let [fl, target] = b.regs();
        b.li(fl, flag as i64);
        b.li(target, 5);
        b.wait(fl, target); // nobody posts
        b.halt();
        let p = b.build(2).unwrap();
        let mut sim = Simulator::new(
            SimConfig::default().with_threads(2).with_max_cycles(20_000),
            &p,
        );
        assert_eq!(sim.run(), Err(SimError::Watchdog { cycles: 20_000 }));
    }

    #[test]
    fn out_of_bounds_store_faults_at_commit() {
        let mut b = ProgramBuilder::new();
        let r = b.reg();
        b.li(r, 1 << 40);
        b.sd(r, r, 0);
        b.halt();
        let p = b.build(1).unwrap();
        let mut sim = Simulator::new(SimConfig::default().with_threads(1), &p);
        assert!(matches!(sim.run(), Err(SimError::Mem { tid: 0, .. })));
    }

    #[test]
    fn faulting_block_commits_no_architectural_state() {
        // Block 2 (pcs 4..8) holds a register write, a healthy store, and a
        // faulting store. The fault must be precise at block granularity:
        // none of the block's side effects may land — not the register
        // write, not the healthy store.
        let mut b = ProgramBuilder::new();
        let [bad, ok, vaddr] = b.regs();
        let slot = b.alloc_zeroed(8);
        b.addi(bad, b.tid_reg(), 1); // pc 0: bad = 1
        b.slli(bad, bad, 40); //        pc 1: bad = 1 << 40 (out of bounds)
        b.addi(vaddr, b.tid_reg(), slot as i32); // pc 2: valid slot address
        b.addi(ok, b.tid_reg(), 0); //  pc 3: pad to the block boundary
        b.addi(ok, ok, 42); //          pc 4: register write in faulting block
        b.sd(ok, vaddr, 0); //          pc 5: healthy store in faulting block
        b.sd(ok, bad, 0); //            pc 6: faulting store
        b.halt(); //                    pc 7
        let p = b.build(1).unwrap();

        let mut sim = Simulator::new(SimConfig::default().with_threads(1), &p);
        let err = sim.run().expect_err("out-of-bounds store faults");
        assert!(
            matches!(err, SimError::Mem { tid: 0, pc: 6, .. }),
            "fault attributed to the faulting store, got {err:?}"
        );
        assert_eq!(
            sim.reg_file()[ok.index()],
            0,
            "register write from the faulting block must not commit"
        );
        assert!(
            sim.memory().words().iter().all(|&w| w == 0),
            "healthy store from the faulting block must not reach memory"
        );
        assert!(
            sim.sb.is_empty(),
            "no store from the faulting block is buffered"
        );
    }

    #[test]
    fn store_drain_fault_reports_the_store_pc() {
        // A fault detected when a buffered store drains to memory must be
        // attributed to the store's own pc (it used to report pc 0). The
        // drain path is driven directly: with a symmetric read/write
        // validity check, issue-time reads catch bad addresses first, so
        // the public API cannot reach a drain-time fault today.
        let mut b = ProgramBuilder::new();
        b.halt();
        let p = b.build(1).unwrap();
        let mut sim = Simulator::new(SimConfig::default().with_threads(1), &p);
        sim.sb.insert(1, 0, 1 << 40, 5, 77).unwrap();
        sim.sb.release(1);
        let err = sim
            .drain_store_stage()
            .expect_err("out-of-bounds drain faults");
        assert!(
            matches!(err, SimError::Mem { tid: 0, pc: 77, .. }),
            "drain fault carries the store's pc, got {err:?}"
        );
    }

    #[test]
    fn program_with_too_many_registers_is_rejected() {
        let mut b = ProgramBuilder::new();
        for _ in 0..29 {
            let _ = b.reg();
        }
        let last = b.reg(); // 32nd register including the two seeded ones
        b.addi(last, last, 1);
        b.halt();
        let p = b.build(4).unwrap(); // fits 4 threads (window 32)
        assert!(Simulator::try_new(SimConfig::default().with_threads(6), &p).is_err());
        assert!(Simulator::try_new(SimConfig::default().with_threads(4), &p).is_ok());
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        let p = sum_program();
        let config = SimConfig::default();
        let mut reference = Simulator::new(config.clone(), &p);
        let ref_stats = reference.run().unwrap();

        let mut sim = Simulator::new(config.clone(), &p);
        for _ in 0..37 {
            sim.step().unwrap();
        }
        // Round-trip through the wire format, not just the in-memory type.
        let bytes = sim.checkpoint().to_bytes();
        let snap = smt_checkpoint::Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snap.cycle, 37);
        let mut resumed = Simulator::restore(config, &p, &snap).unwrap();
        let stats = resumed.run().unwrap();

        assert_eq!(stats, ref_stats, "resumed stats must match uninterrupted");
        assert_eq!(resumed.cycle(), reference.cycle());
        assert_eq!(resumed.reg_file(), reference.reg_file());
        assert_eq!(resumed.memory().words(), reference.memory().words());
    }

    #[test]
    fn checkpoint_of_finished_machine_round_trips() {
        let p = sum_program();
        let config = SimConfig::default();
        let mut sim = Simulator::new(config.clone(), &p);
        let stats = sim.run().unwrap();
        let snap = sim.checkpoint();
        let restored = Simulator::restore(config, &p, &snap).unwrap();
        assert!(restored.finished());
        assert_eq!(restored.stats(), &stats);
        assert_eq!(restored.reg_file(), sim.reg_file());
    }

    #[test]
    fn restore_rejects_mismatched_identities() {
        let p = sum_program();
        let config = SimConfig::default();
        let mut sim = Simulator::new(config.clone(), &p);
        sim.step().unwrap();
        let snap = sim.checkpoint();

        // Different configuration: same program, different thread count.
        let other = config.clone().with_threads(2);
        assert!(matches!(
            Simulator::restore(other, &p, &snap),
            Err(SimError::Snapshot(_))
        ));

        // Different program under the same configuration.
        let mut b = ProgramBuilder::new();
        b.halt();
        let q = b.build(4).unwrap();
        assert!(matches!(
            Simulator::restore(config, &q, &snap),
            Err(SimError::Snapshot(_))
        ));
    }

    /// A second kernel for mixes: writes a recognizable pattern through
    /// loads and stores, architecturally disjoint from `sum_program`.
    fn pattern_program() -> Program {
        let mut b = ProgramBuilder::new();
        let out = b.alloc_zeroed(4 * 8);
        let [v, i, limit, addr] = b.regs();
        b.li(i, 0);
        b.li(limit, 4);
        let top = b.label();
        b.bind(top);
        b.slli(addr, i, 3);
        b.addi(addr, addr, out as i32);
        b.slli(v, i, 4);
        b.addi(v, v, 7);
        b.sd(v, addr, 0);
        b.ld(v, addr, 0);
        b.addi(i, i, 1);
        b.blt(i, limit, top);
        b.halt();
        b.build(1).unwrap()
    }

    #[test]
    fn hetero_mix_matches_per_thread_references() {
        let a = sum_program();
        let b = pattern_program();
        let config = SimConfig::default().with_threads(2);
        let mut sim = Simulator::try_new_mix(config, &[&a, &b]).unwrap();
        assert!(sim.is_multiprogram());
        let stats = sim.run().unwrap();
        let w = window_size(2);
        for (tid, p) in [(0usize, &a), (1, &b)] {
            let mut interp = Interp::new(p, 1);
            interp.run().unwrap();
            let (base, span) = sim.thread_segment(tid);
            let lo = (base / WORD_BYTES) as usize;
            let hi = lo + (span / WORD_BYTES) as usize;
            assert_eq!(
                &sim.memory().words()[lo..hi],
                interp.mem_words(),
                "thread {tid}: its memory segment must match a solo run"
            );
            assert_eq!(
                stats.committed[tid],
                interp.retired_counts().iter().sum::<u64>(),
                "thread {tid}: commit count"
            );
            assert_eq!(
                &sim.reg_file()[tid * w..tid * w + w],
                &interp.reg_file()[..w],
                "thread {tid}: register window"
            );
        }
    }

    #[test]
    fn hetero_checkpoint_restore_resumes_bit_identically() {
        let a = sum_program();
        let b = pattern_program();
        let config = SimConfig::default().with_threads(2);
        let mut reference = Simulator::try_new_mix(config.clone(), &[&a, &b]).unwrap();
        let ref_stats = reference.run().unwrap();

        let mut sim = Simulator::try_new_mix(config.clone(), &[&a, &b]).unwrap();
        for _ in 0..23 {
            sim.step().unwrap();
        }
        let bytes = sim.checkpoint().to_bytes();
        let snap = smt_checkpoint::Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snap.program_hashes.len(), 2, "mix identity is per-thread");
        let mut resumed = Simulator::restore_mix(config, &[&a, &b], &snap).unwrap();
        let stats = resumed.run().unwrap();

        assert_eq!(stats, ref_stats, "resumed stats must match uninterrupted");
        assert_eq!(resumed.cycle(), reference.cycle());
        assert_eq!(resumed.reg_file(), reference.reg_file());
        assert_eq!(resumed.memory().words(), reference.memory().words());
    }

    #[test]
    fn restore_rejects_mismatched_mix() {
        let a = sum_program();
        let b = pattern_program();
        let config = SimConfig::default().with_threads(2);
        let mut sim = Simulator::try_new_mix(config.clone(), &[&a, &b]).unwrap();
        sim.step().unwrap();
        let snap = sim.checkpoint();

        // Swapped mix order: the identity vector is positional.
        assert!(matches!(
            Simulator::restore_mix(config.clone(), &[&b, &a], &snap),
            Err(SimError::Snapshot(_))
        ));
        // A mix snapshot is not a homogeneous snapshot of either program.
        assert!(matches!(
            Simulator::restore(config.clone(), &a, &snap),
            Err(SimError::Snapshot(_))
        ));
        // And a homogeneous snapshot is not a mix snapshot.
        let mut homog = Simulator::new(config.clone(), &a);
        homog.step().unwrap();
        let hsnap = homog.checkpoint();
        assert!(matches!(
            Simulator::restore_mix(config, &[&a, &a], &hsnap),
            Err(SimError::Snapshot(_))
        ));
    }

    #[test]
    fn single_thread_mix_is_homogeneous() {
        // At one thread the two forms are architecturally identical, so
        // their snapshots interchange.
        let p = pattern_program();
        let config = SimConfig::default().with_threads(1);
        let mut sim = Simulator::try_new_mix(config.clone(), &[&p]).unwrap();
        assert!(!sim.is_multiprogram());
        sim.step().unwrap();
        let snap = sim.checkpoint();
        assert!(Simulator::restore(config, &p, &snap).is_ok());
    }

    #[test]
    fn register_window_violation_is_typed() {
        let mut b = ProgramBuilder::new();
        for _ in 0..29 {
            let _ = b.reg();
        }
        let last = b.reg();
        b.addi(last, last, 1);
        b.halt();
        let p = b.build(4).unwrap();
        let err = Simulator::try_new(SimConfig::default().with_threads(6), &p)
            .expect_err("32 registers exceed the 6-thread window");
        assert!(
            matches!(
                err,
                SimError::RegisterWindow {
                    window: 21,
                    threads: 6,
                    ..
                }
            ),
            "expected a typed register-window error, got {err:?}"
        );
        assert!(err.to_string().contains("21-register window"));
    }

    #[test]
    fn stats_are_internally_consistent() {
        let p = sum_program();
        let mut sim = Simulator::new(SimConfig::default(), &p);
        let stats = sim.run().unwrap();
        let interp_count = {
            let mut i = Interp::new(&p, 4);
            i.run().unwrap().total_retired()
        };
        assert_eq!(
            stats.committed_total(),
            interp_count,
            "cycle sim must commit exactly the architectural instruction count"
        );
        assert!(
            stats.issued >= stats.committed_total(),
            "wrong-path issues are extra"
        );
        assert_eq!(stats.cache.accesses, stats.cache.hits + stats.cache.misses);
    }

    #[test]
    fn spec_depth_limit_stays_architecturally_exact() {
        let p = sum_program();
        let tight = run_and_check(&p, SimConfig::default().with_spec_depth(1));
        let free = run_and_check(&p, SimConfig::default());
        assert_eq!(tight.committed_total(), free.committed_total());
        assert!(
            tight.cycles >= free.cycles,
            "a 1-deep speculation limit cannot speed the loop up: {} < {}",
            tight.cycles,
            free.cycles
        );
    }

    #[test]
    fn drain_parks_at_quiescence_and_stays_exact() {
        let p = sum_program();
        let config = SimConfig::default();
        let mut sim = Simulator::new(config.clone(), &p);
        for _ in 0..30 {
            sim.step().unwrap();
        }
        assert!(!sim.is_quiescent(), "mid-loop the pipeline holds work");
        sim.drain().unwrap();
        assert!(sim.is_quiescent());
        assert!(!sim.finished(), "drain parks, it does not finish the run");

        // Draining only withholds new fetch; finishing the run from the
        // parked machine still lands on the reference architecture.
        sim.run().unwrap();
        let mut interp = Interp::new(&p, config.threads);
        interp.run().unwrap();
        assert_eq!(sim.memory().words(), interp.mem_words());
        assert_eq!(sim.reg_file(), interp.reg_file());
    }

    #[test]
    fn warm_fork_resumes_architecture_under_variant_configs() {
        let p = sum_program();
        let source = SimConfig::default();
        let mut sim = Simulator::new(source.clone(), &p);
        for _ in 0..30 {
            sim.step().unwrap();
        }
        sim.drain().unwrap();
        // Round-trip the wire format: warm snapshots are v4 on disk.
        let bytes = sim.checkpoint_warm(&warm::relax_all()).unwrap().to_bytes();
        let snap = smt_checkpoint::Snapshot::from_bytes(&bytes).unwrap();
        assert!(snap.warm.is_some());

        let mut interp = Interp::new(&p, source.threads);
        interp.run().unwrap();
        let variants = [
            source.clone(),
            source.clone().with_su_depth(8),
            source
                .clone()
                .with_predictor(smt_uarch::PredictorKind::Gshare)
                .with_spec_depth(1),
            source.clone().with_fetch_threads(2).with_fetch_width(16),
        ];
        for config in variants {
            let mut fork = Simulator::fork_warm(config.clone(), &p, &snap).unwrap();
            assert_eq!(fork.cycle(), 0, "the fork measures its own window only");
            let stats = fork.run().unwrap();
            assert!(stats.cycles > 0 && stats.committed_total() > 0);
            assert_eq!(
                fork.memory().words(),
                interp.mem_words(),
                "fork under {config:?} diverged architecturally"
            );
            assert_eq!(fork.reg_file(), interp.reg_file());
        }
    }

    #[test]
    fn warm_fork_mix_resumes_per_thread_architecture() {
        let a = sum_program();
        let b = pattern_program();
        let config = SimConfig::default().with_threads(2);
        let mut sim = Simulator::try_new_mix(config.clone(), &[&a, &b]).unwrap();
        for _ in 0..25 {
            sim.step().unwrap();
        }
        sim.drain().unwrap();
        let snap = sim.checkpoint_warm(&[warm::SU_DEPTH, warm::CACHE]).unwrap();

        let variant = config.clone().with_su_depth(8);
        let mut fork = Simulator::fork_warm_mix(variant, &[&a, &b], &snap).unwrap();
        fork.run().unwrap();
        let w = window_size(2);
        for (tid, p) in [(0usize, &a), (1, &b)] {
            let mut interp = Interp::new(p, 1);
            interp.run().unwrap();
            let (base, span) = fork.thread_segment(tid);
            let lo = (base / WORD_BYTES) as usize;
            let hi = lo + (span / WORD_BYTES) as usize;
            assert_eq!(&fork.memory().words()[lo..hi], interp.mem_words());
            assert_eq!(
                &fork.reg_file()[tid * w..tid * w + w],
                &interp.reg_file()[..w]
            );
        }

        // The mix fork gate is positional, like exact restore.
        assert!(matches!(
            Simulator::fork_warm_mix(config.clone().with_su_depth(8), &[&b, &a], &snap),
            Err(SimError::Snapshot(_))
        ));
    }

    #[test]
    fn warm_fork_fails_closed() {
        let p = sum_program();
        let source = SimConfig::default();
        let mut sim = Simulator::new(source.clone(), &p);
        for _ in 0..30 {
            sim.step().unwrap();
        }

        // A warm checkpoint of a busy pipeline is refused outright.
        assert!(matches!(
            sim.checkpoint_warm(&[warm::SU_DEPTH]),
            Err(SimError::Snapshot(_))
        ));
        sim.drain().unwrap();
        assert!(matches!(
            sim.checkpoint_warm(&[warm::SPEC_DEPTH + 1]),
            Err(SimError::Snapshot(_))
        ));
        let snap = sim.checkpoint_warm(&[warm::SU_DEPTH]).unwrap();

        // Forking may vary relaxed fields only.
        assert!(Simulator::fork_warm(source.clone().with_su_depth(4), &p, &snap).is_ok());
        assert!(matches!(
            Simulator::fork_warm(source.clone().with_fetch_width(16), &p, &snap),
            Err(SimError::Snapshot(_))
        ));
        // The thread count is identity, never relaxable.
        assert!(matches!(
            Simulator::fork_warm(source.clone().with_threads(2), &p, &snap),
            Err(SimError::Snapshot(_))
        ));
        // Program identity must match exactly.
        let q = pattern_program();
        assert!(matches!(
            Simulator::fork_warm(source.clone(), &q, &snap),
            Err(SimError::Snapshot(_))
        ));
        // Forging extra relaxed fields without the matching hash fails:
        // the identity binds the relaxed list itself.
        let mut forged = snap.clone();
        forged
            .warm
            .as_mut()
            .unwrap()
            .relaxed
            .push(warm::FETCH_WIDTH);
        assert!(matches!(
            Simulator::fork_warm(source.clone().with_fetch_width(16), &p, &forged),
            Err(SimError::Snapshot(_))
        ));

        // Warm and exact snapshots do not interchange.
        assert!(matches!(
            Simulator::restore(source.clone(), &p, &snap),
            Err(SimError::Snapshot(_))
        ));
        let exact = sim.checkpoint();
        assert!(matches!(
            Simulator::fork_warm(source, &p, &exact),
            Err(SimError::Snapshot(_))
        ));
    }
}
