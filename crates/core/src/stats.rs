//! Statistics collected over a simulation run.

use smt_isa::FuClass;
use smt_mem::CacheStats;

/// Branch-prediction accounting (conditional branches only; unconditional
/// jumps resolve at decode and never mispredict at execute).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BranchStats {
    /// Conditional branches resolved at execute.
    pub resolved: u64,
    /// Resolved branches whose fetch-time prediction was wrong.
    pub mispredicted: u64,
}

impl BranchStats {
    /// Prediction accuracy in percent (100 when no branches resolved).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.resolved == 0 {
            100.0
        } else {
            100.0 * (self.resolved - self.mispredicted) as f64 / self.resolved as f64
        }
    }
}

/// Per-functional-unit-class occupancy snapshot (for Table 3).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct FuUsage {
    /// `(class, per-unit busy cycles)` — unit index in allocation order, so
    /// the last element of each vector is the "extra" unit of the enhanced
    /// configuration.
    pub busy_cycles: Vec<(FuClass, Vec<u64>)>,
}

impl FuUsage {
    /// Busy cycles of the last (extra) unit of `class`, as a percentage of
    /// `cycles` — the paper's Table 3 metric.
    #[must_use]
    pub fn extra_unit_pct(&self, class: FuClass, cycles: u64) -> f64 {
        let busy = self
            .busy_cycles
            .iter()
            .find(|(c, _)| *c == class)
            .and_then(|(_, units)| units.last().copied())
            .unwrap_or(0);
        if cycles == 0 {
            0.0
        } else {
            100.0 * busy as f64 / cycles as f64
        }
    }
}

/// Everything measured during a run.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SimStats {
    /// Total cycles until every thread retired and the machine drained.
    pub cycles: u64,
    /// Instructions committed per thread.
    pub committed: Vec<u64>,
    /// Blocks fetched.
    pub fetched_blocks: u64,
    /// Cycles in which the selected thread could not fetch (empty slot).
    pub fetch_idle_cycles: u64,
    /// Cycles a decoded block could not enter a full scheduling unit
    /// (the paper's "scheduling unit stall").
    pub su_stall_cycles: u64,
    /// Instructions issued to functional units.
    pub issued: u64,
    /// Store issues rejected because the store buffer was full.
    pub store_buffer_full_stalls: u64,
    /// `WAIT` polls that found the condition unsatisfied.
    pub wait_spin_cycles: u64,
    /// Squashed (wrong-path) instructions discarded from the scheduling unit.
    pub squashed: u64,
    /// Sum of scheduling-unit occupancy (entries) over all cycles; divide by
    /// `cycles` for the average.
    pub su_occupancy_sum: u64,
    /// Branch-prediction accounting.
    pub branches: BranchStats,
    /// Data-cache counters.
    pub cache: CacheStats,
    /// Functional-unit occupancy.
    pub fu: FuUsage,
    /// `histogram[w]` = cycles in which exactly `w` instructions issued
    /// (length `issue_width + 1`).
    pub issue_histogram: Vec<u64>,
}

impl SimStats {
    /// Total committed instructions.
    #[must_use]
    pub fn committed_total(&self) -> u64 {
        self.committed.iter().sum()
    }

    /// Committed instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_total() as f64 / self.cycles as f64
        }
    }

    /// Instructions committed per cycle, per thread (indexed by tid).
    /// Cycles are shared — the per-thread IPCs sum to [`ipc`](Self::ipc) —
    /// so this is each thread's share of the machine's throughput, the
    /// fairness view the aggregate number hides.
    #[must_use]
    pub fn per_thread_ipc(&self) -> Vec<f64> {
        if self.cycles == 0 {
            return vec![0.0; self.committed.len()];
        }
        self.committed
            .iter()
            .map(|&c| c as f64 / self.cycles as f64)
            .collect()
    }

    /// Average scheduling-unit occupancy in entries.
    #[must_use]
    pub fn avg_su_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.su_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Mean instructions issued per cycle (from the issue histogram).
    #[must_use]
    pub fn avg_issue_width(&self) -> f64 {
        let cycles: u64 = self.issue_histogram.iter().sum();
        if cycles == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .issue_histogram
            .iter()
            .enumerate()
            .map(|(w, &c)| w as u64 * c)
            .sum();
        weighted as f64 / cycles as f64
    }
}

/// The paper's speedup formula (Section 5.2):
/// `(Mt_perf − St_perf) / St_perf`, with performance the reciprocal of
/// cycle count. Returns a *fraction* (multiply by 100 for percent).
///
/// ```
/// use smt_core::stats::speedup;
/// // Multithreaded run took 2/3 the cycles: 50 % improvement.
/// assert!((speedup(3_000_000, 2_000_000) - 0.5).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if either cycle count is zero.
#[must_use]
pub fn speedup(single_thread_cycles: u64, multi_thread_cycles: u64) -> f64 {
    assert!(
        single_thread_cycles > 0 && multi_thread_cycles > 0,
        "cycle counts must be positive"
    );
    let st = 1.0 / single_thread_cycles as f64;
    let mt = 1.0 / multi_thread_cycles as f64;
    (mt - st) / st
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_totals() {
        let stats = SimStats {
            cycles: 100,
            committed: vec![120, 130],
            ..SimStats::default()
        };
        assert_eq!(stats.committed_total(), 250);
        assert!((stats.ipc() - 2.5).abs() < 1e-12);
        let per = stats.per_thread_ipc();
        assert!((per[0] - 1.2).abs() < 1e-12);
        assert!((per[1] - 1.3).abs() < 1e-12);
        assert!((per.iter().sum::<f64>() - stats.ipc()).abs() < 1e-12);
    }

    #[test]
    fn zero_cycle_edge_cases() {
        let stats = SimStats::default();
        assert_eq!(stats.ipc(), 0.0);
        assert_eq!(stats.avg_su_occupancy(), 0.0);
        assert_eq!(BranchStats::default().accuracy(), 100.0);
    }

    #[test]
    fn speedup_formula() {
        assert!((speedup(100, 100)).abs() < 1e-12);
        assert!(
            speedup(100, 150) < 0.0,
            "slower run is a negative improvement"
        );
        assert!((speedup(150, 100) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn branch_accuracy() {
        let b = BranchStats {
            resolved: 200,
            mispredicted: 30,
        };
        assert!((b.accuracy() - 85.0).abs() < 1e-12);
    }

    #[test]
    fn fu_usage_lookup() {
        let usage = FuUsage {
            busy_cycles: vec![(FuClass::Load, vec![90, 45])],
        };
        assert!((usage.extra_unit_pct(FuClass::Load, 100) - 45.0).abs() < 1e-12);
        assert_eq!(usage.extra_unit_pct(FuClass::FpMul, 100), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn speedup_rejects_zero() {
        let _ = speedup(0, 10);
    }
}
