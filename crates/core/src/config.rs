//! Simulator configuration — the knobs of the paper's Table 2.

use std::fmt;

use smt_isa::MAX_THREADS;
use smt_mem::{CacheConfig, CacheKind};
use smt_uarch::{FuConfig, PredictorKind};

/// How the instruction unit chooses which thread fetches each cycle
/// (Section 5.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum FetchPolicy {
    /// One fetch slot per thread in strict cyclic order, advanced every
    /// cycle "irrespective of the state of execution of the threads" —
    /// a waiting thread's slot is simply wasted. The default, and the
    /// paper's recommendation ("the easiest to implement").
    #[default]
    TrueRoundRobin,
    /// Round robin, but a thread is masked out while it fails to commit
    /// results from the lower-most reorder-buffer block.
    MaskedRoundRobin,
    /// Keep fetching the same thread until the decoder sees a long-latency
    /// trigger (integer divide, FP multiply/divide, or a synchronization
    /// primitive), then switch.
    ConditionalSwitch,
    /// Occupancy-driven selection (Tullsen et al.'s ICOUNT, not in the
    /// source paper): each cycle the fetchable thread with the fewest
    /// instructions resident in the front end and scheduling unit wins,
    /// ties broken by rotating priority. Starvation-free — a thread that
    /// monopolizes the window loses fetch priority by construction.
    Icount,
}

impl fmt::Display for FetchPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FetchPolicy::TrueRoundRobin => "True Round Robin",
            FetchPolicy::MaskedRoundRobin => "Masked Round Robin",
            FetchPolicy::ConditionalSwitch => "Conditional Switch",
            FetchPolicy::Icount => "ICOUNT",
        })
    }
}

/// Which reorder-buffer blocks may commit results (Section 3.5, Figure 2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum CommitPolicy {
    /// Flexible Result Commit: the bottom four blocks are examined and the
    /// lowest eligible block (ready, and with no older block of the same
    /// thread below it) commits. The paper's default.
    #[default]
    Flexible,
    /// Only the lower-most block may commit (the single-threaded baseline
    /// behaviour).
    LowestOnly,
}

impl fmt::Display for CommitPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CommitPolicy::Flexible => "Flexible (bottom four blocks)",
            CommitPolicy::LowestOnly => "Lower-most block only",
        })
    }
}

/// How the decoder tracks dependences (Table 2's "Register Renaming" row).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum RenamingMode {
    /// Full renaming through globally unique tags (the paper's design).
    #[default]
    Full,
    /// Scoreboarding ablation: no renaming — the decoder stalls an
    /// instruction until every pending producer of its source registers has
    /// written back.
    Scoreboard,
}

impl fmt::Display for RenamingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RenamingMode::Full => "full renaming",
            RenamingMode::Scoreboard => "scoreboarding",
        })
    }
}

/// Reconstructed default parameters (see DESIGN.md for provenance).
pub mod defaults {
    /// Default number of resident threads.
    pub const THREADS: usize = 4;
    /// Instructions fetched per cycle (one block).
    pub const FETCH_WIDTH: usize = 4;
    /// Threads fetched per cycle (fetch-unit ports).
    pub const FETCH_THREADS: usize = 1;
    /// Scheduling-unit depth in entries (8 blocks of 4).
    pub const SU_DEPTH: usize = 32;
    /// Instructions per reorder-buffer block.
    pub const BLOCK_SIZE: usize = 4;
    /// Maximum instructions issued to functional units per cycle.
    pub const ISSUE_WIDTH: usize = 8;
    /// Maximum results written back to the scheduling unit per cycle.
    pub const WRITEBACK_WIDTH: usize = 8;
    /// Blocks examined by Flexible Result Commit.
    pub const COMMIT_WINDOW_BLOCKS: usize = 4;
    /// Store-buffer entries.
    pub const STORE_BUFFER: usize = 8;
    /// Branch-target-buffer entries.
    pub const BTB_ENTRIES: usize = 512;
    /// Speculation-depth limit: maximum unresolved conditional branches a
    /// thread may have in flight before its fetch stalls (0 = unlimited,
    /// the paper's machine).
    pub const SPEC_DEPTH: usize = 0;
    /// Watchdog: a run exceeding this many cycles is reported as hung.
    pub const MAX_CYCLES: u64 = 200_000_000;
}

/// Full hardware configuration of a simulation run.
///
/// Construct with [`SimConfig::default`] (the paper's Table 2 defaults) and
/// adjust with the `with_*` methods:
///
/// ```
/// use smt_core::{FetchPolicy, SimConfig};
///
/// let cfg = SimConfig::default()
///     .with_threads(2)
///     .with_fetch_policy(FetchPolicy::ConditionalSwitch)
///     .with_su_depth(48);
/// assert_eq!(cfg.threads, 2);
/// cfg.validate().expect("consistent configuration");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SimConfig {
    /// Number of simultaneously resident threads (1–6).
    pub threads: usize,
    /// Fetch policy.
    pub fetch_policy: FetchPolicy,
    /// Branch-predictor family.
    pub predictor: PredictorKind,
    /// Instructions fetched per selected thread per cycle (the fetch-block
    /// width). Defaults to `block_size`; wider values deliver one oversize
    /// group the decoder drains one block per cycle.
    pub fetch_width: usize,
    /// Threads fetched per cycle (fetch-unit ports). Each port selects a
    /// *distinct* thread; the decoder correspondingly drains up to this
    /// many blocks per cycle.
    pub fetch_threads: usize,
    /// Commit policy.
    pub commit_policy: CommitPolicy,
    /// Dependence-tracking mode.
    pub renaming: RenamingMode,
    /// Result bypassing: a result written back in cycle *c* may wake a
    /// dependant that issues in cycle *c* (Table 2's "Bypassing of results").
    pub bypass: bool,
    /// Fetch blocks are aligned to `block_size` boundaries: entering a block
    /// mid-way wastes the leading slots. This is the stricter reading of the
    /// SDSP's "block of four contiguous instructions" and the machine model
    /// under which the paper's Section 6 suggestion — align branch targets
    /// to block starts — pays off. Default `false` (fetch starts anywhere).
    pub aligned_fetch: bool,
    /// Scheduling-unit depth in entries (a multiple of `block_size`).
    pub su_depth: usize,
    /// Instructions per block (fetch width and commit granule).
    pub block_size: usize,
    /// Issue width (instructions per cycle).
    pub issue_width: usize,
    /// Writeback width (results per cycle).
    pub writeback_width: usize,
    /// Blocks examined by the flexible commit mux.
    pub commit_window_blocks: usize,
    /// Functional-unit complement.
    pub fu: FuConfig,
    /// Data-cache organization.
    pub cache_kind: CacheKind,
    /// Data-cache geometry and timing.
    pub cache: CacheConfig,
    /// Store-buffer capacity.
    pub store_buffer: usize,
    /// BTB entries.
    pub btb_entries: usize,
    /// Speculation-depth limit: a thread with this many unresolved
    /// conditional branches in flight stops fetching until one resolves
    /// (under True Round Robin its slot is wasted, like a suspension; the
    /// other policies skip it). 0 disables the limit.
    pub spec_depth: usize,
    /// Watchdog limit in cycles.
    pub max_cycles: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            threads: defaults::THREADS,
            fetch_policy: FetchPolicy::default(),
            predictor: PredictorKind::default(),
            fetch_width: defaults::FETCH_WIDTH,
            fetch_threads: defaults::FETCH_THREADS,
            commit_policy: CommitPolicy::default(),
            renaming: RenamingMode::default(),
            bypass: true,
            aligned_fetch: false,
            su_depth: defaults::SU_DEPTH,
            block_size: defaults::BLOCK_SIZE,
            issue_width: defaults::ISSUE_WIDTH,
            writeback_width: defaults::WRITEBACK_WIDTH,
            commit_window_blocks: defaults::COMMIT_WINDOW_BLOCKS,
            fu: FuConfig::paper_default(),
            cache_kind: CacheKind::SetAssociative,
            cache: CacheConfig::paper(CacheKind::SetAssociative),
            store_buffer: defaults::STORE_BUFFER,
            btb_entries: defaults::BTB_ENTRIES,
            spec_depth: defaults::SPEC_DEPTH,
            max_cycles: defaults::MAX_CYCLES,
        }
    }
}

/// Error from [`SimConfig::validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl SimConfig {
    /// Sets the thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the fetch policy.
    #[must_use]
    pub fn with_fetch_policy(mut self, policy: FetchPolicy) -> Self {
        self.fetch_policy = policy;
        self
    }

    /// Sets the branch-predictor family.
    #[must_use]
    pub fn with_predictor(mut self, kind: PredictorKind) -> Self {
        self.predictor = kind;
        self
    }

    /// Sets the per-thread fetch-block width.
    #[must_use]
    pub fn with_fetch_width(mut self, width: usize) -> Self {
        self.fetch_width = width;
        self
    }

    /// Sets the number of threads fetched per cycle.
    #[must_use]
    pub fn with_fetch_threads(mut self, ports: usize) -> Self {
        self.fetch_threads = ports;
        self
    }

    /// Sets the commit policy.
    #[must_use]
    pub fn with_commit_policy(mut self, policy: CommitPolicy) -> Self {
        self.commit_policy = policy;
        self
    }

    /// Sets the dependence-tracking mode.
    #[must_use]
    pub fn with_renaming(mut self, renaming: RenamingMode) -> Self {
        self.renaming = renaming;
        self
    }

    /// Enables or disables result bypassing.
    #[must_use]
    pub fn with_bypass(mut self, bypass: bool) -> Self {
        self.bypass = bypass;
        self
    }

    /// Selects aligned or free fetch-block placement.
    #[must_use]
    pub fn with_aligned_fetch(mut self, aligned: bool) -> Self {
        self.aligned_fetch = aligned;
        self
    }

    /// Sets the scheduling-unit depth in entries.
    #[must_use]
    pub fn with_su_depth(mut self, entries: usize) -> Self {
        self.su_depth = entries;
        self
    }

    /// Sets the functional-unit complement.
    #[must_use]
    pub fn with_fu(mut self, fu: FuConfig) -> Self {
        self.fu = fu;
        self
    }

    /// Selects the cache organization (geometry follows the paper's 8 KB).
    #[must_use]
    pub fn with_cache_kind(mut self, kind: CacheKind) -> Self {
        self.cache_kind = kind;
        self.cache = CacheConfig::paper(kind);
        self
    }

    /// Overrides the cache geometry/timing directly.
    #[must_use]
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// Sets the store-buffer capacity.
    #[must_use]
    pub fn with_store_buffer(mut self, entries: usize) -> Self {
        self.store_buffer = entries;
        self
    }

    /// Sets the speculation-depth limit (0 = unlimited).
    #[must_use]
    pub fn with_spec_depth(mut self, depth: usize) -> Self {
        self.spec_depth = depth;
        self
    }

    /// Sets the watchdog limit.
    #[must_use]
    pub fn with_max_cycles(mut self, cycles: u64) -> Self {
        self.max_cycles = cycles;
        self
    }

    /// Number of blocks the scheduling unit holds.
    #[must_use]
    pub fn su_blocks(&self) -> usize {
        self.su_depth / self.block_size
    }

    /// The structure capacities the trace instruments size their
    /// histograms from. `smt-trace` cannot see `SimConfig` without a
    /// dependency cycle, so the fields are copied over here.
    #[must_use]
    pub fn trace_shape(&self) -> smt_trace::MachineShape {
        smt_trace::MachineShape {
            width: (self.block_size * self.fetch_threads) as u32,
            su_depth: self.su_depth as u32,
            su_blocks: self.su_blocks() as u32,
            store_buffer: self.store_buffer as u32,
            mshrs: self.cache.mshrs as u32,
            threads: self.threads,
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first inconsistency found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.threads == 0 || self.threads > MAX_THREADS {
            return Err(ConfigError(format!(
                "threads must be 1..={MAX_THREADS}, got {}",
                self.threads
            )));
        }
        if self.block_size == 0 {
            return Err(ConfigError("block_size must be positive".into()));
        }
        if self.su_depth == 0 || !self.su_depth.is_multiple_of(self.block_size) {
            return Err(ConfigError(format!(
                "su_depth {} must be a positive multiple of block_size {}",
                self.su_depth, self.block_size
            )));
        }
        if self.issue_width == 0 || self.writeback_width == 0 {
            return Err(ConfigError(
                "issue and writeback widths must be positive".into(),
            ));
        }
        if self.commit_window_blocks == 0 {
            return Err(ConfigError(
                "commit window must examine at least one block".into(),
            ));
        }
        if self.store_buffer == 0 {
            return Err(ConfigError(
                "store buffer must have at least one entry".into(),
            ));
        }
        if !self.btb_entries.is_power_of_two() {
            return Err(ConfigError(format!(
                "btb_entries {} must be a power of two",
                self.btb_entries
            )));
        }
        if self.fetch_width == 0 {
            return Err(ConfigError("fetch_width must be positive".into()));
        }
        if self.aligned_fetch && !self.fetch_width.is_power_of_two() {
            return Err(ConfigError(format!(
                "aligned fetch requires a power-of-two fetch_width, got {}",
                self.fetch_width
            )));
        }
        if self.fetch_threads == 0 || self.fetch_threads > self.threads {
            return Err(ConfigError(format!(
                "fetch_threads must be 1..=threads ({}), got {}",
                self.threads, self.fetch_threads
            )));
        }
        Ok(())
    }
}

/// Configuration-field identity registry for **warmup forking**.
///
/// A warm (v4) snapshot names the fields a forked run may change as a
/// list of these ids, and binds everything else with a hash of the
/// source configuration after [`canonicalize`] replaced every relaxed
/// field with its default. `Simulator::fork_warm` recomputes that hash
/// for the target configuration against the snapshot's own relaxed list:
/// two configurations pass iff they agree on every non-relaxed field.
///
/// `threads` deliberately has **no** id — the register-file partition,
/// per-thread memory segments, and program seeding all depend on it, so
/// a warm fork can never change the thread count.
pub mod warm {
    use super::SimConfig;

    /// `fetch_policy`.
    pub const FETCH_POLICY: u32 = 1;
    /// `predictor` (the family; the BTB geometry is [`BTB_ENTRIES`]).
    pub const PREDICTOR: u32 = 2;
    /// `fetch_width`.
    pub const FETCH_WIDTH: u32 = 3;
    /// `fetch_threads`.
    pub const FETCH_THREADS: u32 = 4;
    /// `commit_policy`.
    pub const COMMIT_POLICY: u32 = 5;
    /// `renaming`.
    pub const RENAMING: u32 = 6;
    /// `bypass`.
    pub const BYPASS: u32 = 7;
    /// `aligned_fetch`.
    pub const ALIGNED_FETCH: u32 = 8;
    /// `su_depth`.
    pub const SU_DEPTH: u32 = 9;
    /// `block_size`.
    pub const BLOCK_SIZE: u32 = 10;
    /// `issue_width`.
    pub const ISSUE_WIDTH: u32 = 11;
    /// `writeback_width`.
    pub const WRITEBACK_WIDTH: u32 = 12;
    /// `commit_window_blocks`.
    pub const COMMIT_WINDOW_BLOCKS: u32 = 13;
    /// `fu` (the whole functional-unit complement).
    pub const FU: u32 = 14;
    /// `cache_kind` + `cache` (organization and geometry together).
    pub const CACHE: u32 = 15;
    /// `store_buffer`.
    pub const STORE_BUFFER: u32 = 16;
    /// `btb_entries`.
    pub const BTB_ENTRIES: u32 = 17;
    /// `max_cycles` (the watchdog is not part of the machine).
    pub const MAX_CYCLES: u32 = 18;
    /// `spec_depth`.
    pub const SPEC_DEPTH: u32 = 19;

    /// Whether `id` names a field this build knows how to relax. A warm
    /// snapshot naming an unknown id (written by a newer build) fails
    /// closed instead of silently binding the wrong fields.
    #[must_use]
    pub fn is_known(id: u32) -> bool {
        (FETCH_POLICY..=SPEC_DEPTH).contains(&id)
    }

    /// Every relaxable field — the standard relaxation the sweep's
    /// warmup-fork store uses, leaving exactly `threads` bound.
    #[must_use]
    pub fn relax_all() -> Vec<u32> {
        (FETCH_POLICY..=SPEC_DEPTH).collect()
    }

    /// `config` with every relaxed field replaced by its default value.
    /// Unknown ids canonicalize nothing (callers reject them first; they
    /// still perturb [`identity`] through the relaxed list itself).
    #[must_use]
    pub fn canonicalize(config: &SimConfig, relaxed: &[u32]) -> SimConfig {
        let d = SimConfig::default();
        let mut c = config.clone();
        for &id in relaxed {
            match id {
                FETCH_POLICY => c.fetch_policy = d.fetch_policy,
                PREDICTOR => c.predictor = d.predictor,
                FETCH_WIDTH => c.fetch_width = d.fetch_width,
                FETCH_THREADS => c.fetch_threads = d.fetch_threads,
                COMMIT_POLICY => c.commit_policy = d.commit_policy,
                RENAMING => c.renaming = d.renaming,
                BYPASS => c.bypass = d.bypass,
                ALIGNED_FETCH => c.aligned_fetch = d.aligned_fetch,
                SU_DEPTH => c.su_depth = d.su_depth,
                BLOCK_SIZE => c.block_size = d.block_size,
                ISSUE_WIDTH => c.issue_width = d.issue_width,
                WRITEBACK_WIDTH => c.writeback_width = d.writeback_width,
                COMMIT_WINDOW_BLOCKS => c.commit_window_blocks = d.commit_window_blocks,
                FU => c.fu = d.fu,
                CACHE => {
                    c.cache_kind = d.cache_kind;
                    c.cache = d.cache;
                }
                STORE_BUFFER => c.store_buffer = d.store_buffer,
                BTB_ENTRIES => c.btb_entries = d.btb_entries,
                MAX_CYCLES => c.max_cycles = d.max_cycles,
                SPEC_DEPTH => c.spec_depth = d.spec_depth,
                _ => {}
            }
        }
        c
    }

    /// The warm identity hash: a stable digest of the canonicalized
    /// configuration *and* the relaxed list itself, so editing the list
    /// changes the hash along with the fields it unbinds.
    #[must_use]
    pub fn identity(config: &SimConfig, relaxed: &[u32]) -> u64 {
        smt_checkpoint::stable_hash(&(canonicalize(config, relaxed), relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table2() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.fetch_policy, FetchPolicy::TrueRoundRobin);
        assert_eq!(cfg.predictor, PredictorKind::SharedBtb);
        assert_eq!(cfg.fetch_width, 4);
        assert_eq!(cfg.fetch_threads, 1);
        assert_eq!(cfg.commit_policy, CommitPolicy::Flexible);
        assert_eq!(cfg.su_depth, 32);
        assert_eq!(cfg.su_blocks(), 8);
        assert_eq!(cfg.issue_width, 8);
        assert_eq!(cfg.writeback_width, 8);
        assert_eq!(cfg.store_buffer, 8);
        assert!(cfg.bypass);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn builder_methods_chain() {
        let cfg = SimConfig::default()
            .with_threads(6)
            .with_commit_policy(CommitPolicy::LowestOnly)
            .with_su_depth(64)
            .with_bypass(false);
        assert_eq!(cfg.threads, 6);
        assert_eq!(cfg.su_blocks(), 16);
        assert!(!cfg.bypass);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn trace_shape_mirrors_the_config() {
        let shape = SimConfig::default().with_threads(6).trace_shape();
        assert_eq!(shape.width, 4);
        assert_eq!(shape.su_depth, 32);
        assert_eq!(shape.su_blocks, 8);
        assert_eq!(shape.store_buffer, 8);
        assert_eq!(shape.mshrs, 1);
        assert_eq!(shape.threads, 6);
    }

    #[test]
    fn cache_kind_switches_geometry() {
        let cfg = SimConfig::default().with_cache_kind(CacheKind::DirectMapped);
        assert_eq!(cfg.cache.ways, 1);
        assert_eq!(cfg.cache.size_bytes, 8 * 1024);
    }

    #[test]
    fn validation_catches_inconsistencies() {
        assert!(SimConfig::default().with_threads(0).validate().is_err());
        assert!(SimConfig::default().with_threads(9).validate().is_err());
        assert!(SimConfig::default().with_threads(8).validate().is_ok());
        assert!(SimConfig::default().with_su_depth(30).validate().is_err());
        assert!(SimConfig::default()
            .with_store_buffer(0)
            .validate()
            .is_err());
        let cfg = SimConfig {
            btb_entries: 300,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn front_end_knobs_validate() {
        assert!(SimConfig::default().with_fetch_width(0).validate().is_err());
        assert!(SimConfig::default().with_fetch_width(6).validate().is_ok());
        assert!(SimConfig::default()
            .with_aligned_fetch(true)
            .with_fetch_width(6)
            .validate()
            .is_err());
        assert!(SimConfig::default()
            .with_aligned_fetch(true)
            .with_fetch_width(8)
            .validate()
            .is_ok());
        assert!(SimConfig::default()
            .with_fetch_threads(0)
            .validate()
            .is_err());
        assert!(SimConfig::default()
            .with_threads(1)
            .with_fetch_threads(2)
            .validate()
            .is_err());
        assert!(SimConfig::default()
            .with_fetch_threads(2)
            .with_predictor(PredictorKind::Gshare)
            .with_fetch_policy(FetchPolicy::Icount)
            .validate()
            .is_ok());
    }

    #[test]
    fn two_ported_fetch_widens_the_trace_shape() {
        let shape = SimConfig::default().with_fetch_threads(2).trace_shape();
        assert_eq!(shape.width, 8, "slot bandwidth doubles with two ports");
    }

    #[test]
    fn spec_depth_defaults_off_and_chains() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.spec_depth, 0, "paper machine: unlimited speculation");
        let cfg = cfg.with_spec_depth(2);
        assert_eq!(cfg.spec_depth, 2);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn warm_identity_binds_exactly_the_non_relaxed_fields() {
        let base = SimConfig::default();
        let relaxed = warm::relax_all();
        let id = warm::identity(&base, &relaxed);
        // Any relaxed field may differ without changing the identity.
        let variant = base
            .clone()
            .with_su_depth(64)
            .with_fetch_policy(FetchPolicy::Icount)
            .with_predictor(PredictorKind::Gshare)
            .with_cache_kind(CacheKind::DirectMapped)
            .with_spec_depth(3);
        assert_eq!(warm::identity(&variant, &relaxed), id);
        // The non-relaxed field (threads) must not.
        let other = base.clone().with_threads(2);
        assert_ne!(warm::identity(&other, &relaxed), id);
        // A shorter relaxed list re-binds the dropped fields…
        let partial: Vec<u32> = relaxed
            .iter()
            .copied()
            .filter(|&f| f != warm::SU_DEPTH)
            .collect();
        assert_ne!(
            warm::identity(&base.clone().with_su_depth(64), &partial),
            warm::identity(&base, &partial),
            "su_depth binds once it is not relaxed"
        );
        // …and the list itself is part of the identity.
        assert_ne!(
            warm::identity(&base, &partial),
            warm::identity(&base, &relaxed)
        );
    }

    #[test]
    fn warm_ids_are_known_and_complete() {
        for id in warm::relax_all() {
            assert!(warm::is_known(id));
        }
        assert!(!warm::is_known(0));
        assert!(!warm::is_known(warm::SPEC_DEPTH + 1));
    }

    #[test]
    fn display_strings() {
        assert_eq!(FetchPolicy::TrueRoundRobin.to_string(), "True Round Robin");
        assert_eq!(
            CommitPolicy::LowestOnly.to_string(),
            "Lower-most block only"
        );
        assert_eq!(RenamingMode::Scoreboard.to_string(), "scoreboarding");
    }
}
