//! A tiny non-cryptographic hasher for the simulator's hot-path index maps.
//!
//! The standard library's default `HashMap` hasher (SipHash-1-3) is
//! DoS-resistant but costs tens of nanoseconds per operation — measurable
//! when the scheduling unit hashes a few tags per simulated cycle. The keys
//! here are simulator-internal integers (renaming tags), not attacker
//! input, so a multiplicative mix is sufficient and much cheaper. The
//! container crates that usually provide this (`fxhash`, `ahash`) are
//! unavailable in the offline build environment, hence this 30-line local
//! version (Fibonacci hashing with an xor-fold, the same construction
//! rustc's `FxHasher` uses for integers).

use std::hash::{BuildHasherDefault, Hasher};

/// `BuildHasher` plugging [`MixHasher`] into `HashMap`.
pub type MixState = BuildHasherDefault<MixHasher>;

/// Multiplicative integer hasher; see the module docs.
#[derive(Default)]
pub struct MixHasher(u64);

/// 2^64 / φ, the usual Fibonacci-hashing multiplier (odd, high entropy in
/// the top bits).
const PHI: u64 = 0x9e37_79b9_7f4a_7c15;

impl MixHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0 ^ word).wrapping_mul(PHI);
        self.0 ^= self.0 >> 32;
    }
}

impl Hasher for MixHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn distinct_integers_hash_distinctly() {
        let mut map: HashMap<u64, u64, MixState> = HashMap::default();
        for i in 0..1000 {
            map.insert(i, i * 2);
        }
        assert_eq!(map.len(), 1000);
        for i in 0..1000 {
            assert_eq!(map.get(&i), Some(&(i * 2)));
        }
    }

    #[test]
    fn byte_stream_hashing_is_consistent() {
        use std::hash::Hash;
        let mut a = MixHasher::default();
        let mut b = MixHasher::default();
        "same key".hash(&mut a);
        "same key".hash(&mut b);
        assert_eq!(a.finish(), b.finish());
    }
}
