//! Cycle-accurate simulator of a **multithreaded superscalar** (SMT)
//! processor, reproducing *Gulati & Bagherzadeh, "Performance Study of a
//! Multithreaded Superscalar Microprocessor", HPCA 1996*.
//!
//! The modelled machine is the SDSP — a 4-wide fetch/decode RISC with a
//! combined reorder-buffer/instruction-window ("scheduling unit"), full
//! register renaming, 2-bit branch prediction, and oldest-first out-of-order
//! issue of up to 8 instructions per cycle — extended to keep up to six
//! threads resident simultaneously:
//!
//! * **N program counters** with three fetch policies
//!   ([`FetchPolicy::TrueRoundRobin`], [`FetchPolicy::MaskedRoundRobin`],
//!   [`FetchPolicy::ConditionalSwitch`]);
//! * a **thread-ID field** per scheduling-unit entry, with globally unique
//!   renaming tags so wakeup/issue logic is thread-blind;
//! * **selective squash** of only the mispredicting thread's younger
//!   entries;
//! * **Flexible Result Commit** — any of the bottom four reorder-buffer
//!   blocks may commit when its thread has no older block resident
//!   ([`CommitPolicy::Flexible`]);
//! * statically partitioned 128-entry register file, shared 8 KB data
//!   cache, shared 8-entry store buffer, shared BTB.
//!
//! # Quickstart
//!
//! ```
//! use smt_core::{SimConfig, Simulator};
//! use smt_isa::builder::ProgramBuilder;
//!
//! // Every thread computes tid * 2 into a private register.
//! let mut b = ProgramBuilder::new();
//! let r = b.reg();
//! b.add(r, b.tid_reg(), b.tid_reg());
//! b.halt();
//! let program = b.build(4)?;
//!
//! let mut sim = Simulator::new(SimConfig::default(), &program);
//! let stats = sim.run()?;
//! assert_eq!(sim.reg(3, r), 6);
//! println!("IPC = {:.2}", stats.ipc());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Module map
//!
//! | module | contents |
//! |--------|----------|
//! | [`commit`] | [`CommitSink`]: the observable architectural commit stream |
//! | [`config`] | [`SimConfig`] and the policy enums (the paper's Table 2) |
//! | [`fetch`] | instruction unit: PCs, fetch policies (Section 5.1) |
//! | [`su`] | scheduling unit: blocks, renaming lookups, commit selection |
//! | [`sim`] | the pipeline itself |
//! | [`stats`] | [`SimStats`] and the paper's speedup formula |
//! | [`error`] | [`SimError`] |
//!
//! Pipeline observability (lifecycle tracing, CPI-stack stall attribution,
//! occupancy telemetry) lives in the re-exported [`trace`] crate; attach a
//! [`trace::TraceSink`] with [`Simulator::run_traced`]. With no sink the
//! event plumbing compiles away — traced and untraced runs are
//! cycle-for-cycle identical, and untraced runs pay nothing.

pub mod commit;
pub mod config;
pub mod error;
pub mod fasthash;
pub mod fetch;
pub mod sim;
pub mod stats;
pub mod su;

pub use smt_trace as trace;

pub use commit::{CommitSink, Retirement};
pub use config::{CommitPolicy, ConfigError, FetchPolicy, RenamingMode, SimConfig};
pub use error::SimError;
pub use sim::{config_identity, program_identity, Simulator};
pub use smt_checkpoint::Snapshot;
pub use smt_uarch::PredictorKind;
pub use stats::{BranchStats, SimStats};
pub use trace::{TraceEvent, TraceSink};
