//! Simulation errors.

use std::fmt;

use smt_isa::Reg;
use smt_mem::MemError;

use crate::config::ConfigError;

/// Fatal error raised by the cycle simulator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// The program is incompatible with the configuration.
    Program(String),
    /// The program names a register outside the per-thread window implied
    /// by the thread count: partitioning the 128-entry register file
    /// across more threads shrinks each thread's window, so a kernel that
    /// fits 4 threads may not fit 8. Typed (rather than a [`Program`]
    /// string) so sweeps can classify such cells as infeasible instead of
    /// aborting.
    ///
    /// [`Program`]: Self::Program
    RegisterWindow {
        /// Instruction index naming the offending register.
        pc: usize,
        /// The register outside the window.
        reg: Reg,
        /// Window size (registers per thread) at this thread count.
        window: usize,
        /// The thread count that implies `window`.
        threads: usize,
    },
    /// A snapshot could not be applied: identity mismatch with the given
    /// configuration/program, or a payload decode failure.
    Snapshot(String),
    /// The run exceeded the watchdog cycle limit — a deadlocked or runaway
    /// program.
    Watchdog {
        /// Configured limit that was hit.
        cycles: u64,
    },
    /// A non-speculative memory access faulted (or a speculative fault
    /// survived to commit).
    Mem {
        /// The underlying fault.
        err: MemError,
        /// Faulting thread.
        tid: usize,
        /// Program counter of the faulting instruction.
        pc: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "{e}"),
            SimError::Program(msg) => write!(f, "program incompatible: {msg}"),
            SimError::RegisterWindow {
                pc,
                reg,
                window,
                threads,
            } => write!(
                f,
                "instruction at pc {pc} uses {reg}, outside the {window}-register \
                 window of a {threads}-thread partition"
            ),
            SimError::Snapshot(msg) => write!(f, "snapshot rejected: {msg}"),
            SimError::Watchdog { cycles } => {
                write!(
                    f,
                    "watchdog: run exceeded {cycles} cycles (deadlock or runaway program)"
                )
            }
            SimError::Mem { err, tid, pc } => {
                write!(f, "thread {tid} at pc {pc}: {err}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            SimError::Mem { err, .. } => Some(err),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::Watchdog { cycles: 10 };
        assert!(e.to_string().contains("10 cycles"));
        let e = SimError::Mem {
            err: MemError::Unaligned { addr: 3 },
            tid: 1,
            pc: 7,
        };
        assert!(e.to_string().contains("thread 1"));
        assert!(e.to_string().contains("0x3"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error as _;
        let e = SimError::Mem {
            err: MemError::Unaligned { addr: 3 },
            tid: 0,
            pc: 0,
        };
        assert!(e.source().is_some());
        assert!(SimError::Watchdog { cycles: 1 }.source().is_none());
    }
}
