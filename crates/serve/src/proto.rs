//! The wire protocol: newline-delimited JSON, one request or response
//! object per line.
//!
//! # Requests
//!
//! Every request is a JSON object with a `verb` field:
//!
//! | verb       | fields                                   | effect |
//! |------------|------------------------------------------|--------|
//! | `ping`     | —                                        | liveness + server identity |
//! | `status`   | —                                        | queue/worker/counter snapshot |
//! | `submit`   | `cells: [spec…]` and/or `grid: "name"`, optional `progress: bool`, `cpi: bool` | schedule cells, stream results |
//! | `fetch`    | `cell: spec`                             | cache-only probe, never simulates |
//! | `search`   | `workload`, optional `threads`, `seed`, `warmup`, `space: "smoke"\|"full"` | deterministic Pareto search, one `frontier` response |
//! | `shutdown` | —                                        | stop accepting, drain workers, exit |
//!
//! A *spec* object names one design-space cell. Only `workload` is
//! required; every other dimension defaults to the paper machine:
//!
//! ```json
//! {"workload":"sieve","policy":"trr","predictor":"btb","threads":4,
//!  "fetch_threads":1,"fetch_width":4,"su_depth":32,"cache":"sa"}
//! ```
//!
//! Dimension spellings match the cell-id abbreviations used everywhere
//! else in the repository: policies `trr|mrr|cs|ic`, predictors
//! `btb|gsh|pbtb`, caches `sa|dm`, workloads by case-insensitive
//! built-in name (`sieve`, `ll7`, `matrix`, …) or corpus name
//! (`quicksort`, …). A `'+'`-joined workload (`mpd+matmul`) is a
//! heterogeneous per-thread mix; its arity must equal `threads`, and
//! corpus names resolve only on a server started with `--corpus`.
//!
//! # Responses
//!
//! Every response is an object with a `type` field: `pong`, `status`,
//! `accepted`, `progress`, `cell`, `miss`, `done`, `bye`, or `error`.
//! Errors are *typed and line-framed* — a malformed request never kills
//! the connection (the server answers `{"type":"error","reason":…}` and
//! keeps reading), with one exception: a line exceeding the
//! [`MAX_LINE`](smt_experiments::json::MAX_LINE) cap cannot be safely
//! resynchronized and closes the connection after the error line.
//!
//! A `cell` response carries the full design point and its record — the
//! same fields, hashes, and float formatting as one entry of the batch
//! sweep's `results.json`, so a client holding `cell` lines can
//! reconstruct that file byte-identically (asserted by the black-box
//! suite).

use smt_core::config::defaults;
use smt_core::FetchPolicy;
use smt_experiments::explore::{hardware_cost, EvalMode, SearchReport, SearchSpace};
use smt_experiments::json::Value;
use smt_experiments::sweep::{CellRecord, CellSpec, CellStatus, Grid, WorkSpec};
use smt_mem::CacheKind;
use smt_trace::{CpiBreakdown, SlotCause};
use smt_uarch::PredictorKind;
use smt_workloads::WorkloadKind;

/// Most cells one `submit` may carry (the 990-cell paper grid fits with
/// headroom; a hostile 10⁶-cell submission does not).
pub const MAX_CELLS: usize = 4096;

/// Warmup length a `search` request gets when it does not name one —
/// matches the `sweep --search` default.
pub const DEFAULT_WARMUP: u64 = 20_000;

/// A parsed, validated request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Server snapshot.
    Status,
    /// Schedule cells; stream `progress` ticks and attach `cpi`
    /// telemetry when asked.
    Submit {
        /// The deduplicated… no — the raw cell list, in request order
        /// (the server dedups).
        cells: Vec<CellSpec>,
        /// Stream per-quantum progress events.
        progress: bool,
        /// Attach a live CPI-stack breakdown to freshly simulated cells.
        cpi: bool,
    },
    /// Cache-only probe for one cell.
    Fetch(CellSpec),
    /// Deterministic Pareto search over a [`SearchSpace`], answered
    /// with one `frontier` response.
    Search {
        /// What every searched point runs.
        work: WorkSpec,
        /// Resident threads (fixed across the space).
        threads: usize,
        /// Hill-climbing seed.
        seed: u64,
        /// How the points are measured: warm-forked after this many
        /// warmup cycles, or exact cold runs when 0.
        mode: EvalMode,
        /// Whether to search the full region or the 16-point smoke one.
        full_space: bool,
    },
    /// Stop the server.
    Shutdown,
}

impl Request {
    /// Parses and validates a request value.
    ///
    /// # Errors
    ///
    /// Returns a reason string (safe to echo into an `error` response)
    /// for anything that is not a well-formed request.
    pub fn parse(v: &Value) -> Result<Request, String> {
        let Value::Object(_) = v else {
            return Err("request must be a JSON object".into());
        };
        let verb = v
            .get("verb")
            .ok_or("missing \"verb\" field")?
            .as_str()
            .ok_or("\"verb\" must be a string")?;
        match verb {
            "ping" => Ok(Request::Ping),
            "status" => Ok(Request::Status),
            "shutdown" => Ok(Request::Shutdown),
            "fetch" => {
                let cell = v.get("cell").ok_or("fetch needs a \"cell\" object")?;
                Ok(Request::Fetch(spec_from_value(cell)?))
            }
            "search" => {
                let workload = dim_str(v, "workload")?.ok_or("search needs a \"workload\"")?;
                let work = WorkSpec::parse(workload)?;
                let big = |key: &str, default: u64| -> Result<u64, String> {
                    match v.get(key) {
                        None => Ok(default),
                        Some(x) => x
                            .as_u64()
                            .ok_or(format!("\"{key}\" must be a non-negative integer")),
                    }
                };
                let warmup = big("warmup", DEFAULT_WARMUP)?;
                let full_space = match dim_str(v, "space")? {
                    None | Some("smoke") => false,
                    Some("full") => true,
                    Some(other) => {
                        return Err(format!("unknown space {other:?} (smoke|full)"));
                    }
                };
                Ok(Request::Search {
                    work,
                    threads: dim(v, "threads", defaults::THREADS)?,
                    seed: big("seed", 0)?,
                    mode: if warmup == 0 {
                        EvalMode::Full
                    } else {
                        EvalMode::Warm { warmup }
                    },
                    full_space,
                })
            }
            "submit" => {
                let mut cells = Vec::new();
                if let Some(grid) = v.get("grid") {
                    let name = grid.as_str().ok_or("\"grid\" must be a string")?;
                    cells.extend(grid_by_name(name)?.cells());
                }
                if let Some(list) = v.get("cells") {
                    let list = list.as_array().ok_or("\"cells\" must be an array")?;
                    for c in list {
                        cells.push(spec_from_value(c)?);
                    }
                }
                if cells.is_empty() {
                    return Err("submit needs \"cells\" and/or \"grid\"".into());
                }
                if cells.len() > MAX_CELLS {
                    return Err(format!(
                        "submission of {} cells exceeds the {MAX_CELLS}-cell cap",
                        cells.len()
                    ));
                }
                Ok(Request::Submit {
                    cells,
                    progress: flag(v, "progress")?,
                    cpi: flag(v, "cpi")?,
                })
            }
            other => Err(format!("unknown verb {other:?}")),
        }
    }
}

fn flag(v: &Value, key: &str) -> Result<bool, String> {
    match v.get(key) {
        None => Ok(false),
        Some(x) => x.as_bool().ok_or(format!("\"{key}\" must be a boolean")),
    }
}

/// Resolves a named grid preset.
///
/// # Errors
///
/// Unknown names are reported with the valid spellings.
pub fn grid_by_name(name: &str) -> Result<Grid, String> {
    match name {
        "smoke" => Ok(Grid::smoke()),
        "paper" => Ok(Grid::paper()),
        "frontend" => Ok(Grid::frontend()),
        "hetero" => Ok(Grid::hetero()),
        other => Err(format!(
            "unknown grid {other:?} (expected smoke|paper|frontend|hetero)"
        )),
    }
}

/// Parses a workload by its case-insensitive display name.
#[must_use]
pub fn parse_workload(s: &str) -> Option<WorkloadKind> {
    WorkloadKind::ALL
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(s))
}

/// Parses a fetch policy by its cell-id abbreviation.
#[must_use]
pub fn parse_policy(s: &str) -> Option<FetchPolicy> {
    match s {
        "trr" => Some(FetchPolicy::TrueRoundRobin),
        "mrr" => Some(FetchPolicy::MaskedRoundRobin),
        "cs" => Some(FetchPolicy::ConditionalSwitch),
        "ic" => Some(FetchPolicy::Icount),
        _ => None,
    }
}

/// The cell-id abbreviation of a fetch policy.
#[must_use]
pub fn policy_abbrev(p: FetchPolicy) -> &'static str {
    match p {
        FetchPolicy::TrueRoundRobin => "trr",
        FetchPolicy::MaskedRoundRobin => "mrr",
        FetchPolicy::ConditionalSwitch => "cs",
        FetchPolicy::Icount => "ic",
    }
}

/// Parses a predictor family by its abbreviation.
#[must_use]
pub fn parse_predictor(s: &str) -> Option<PredictorKind> {
    PredictorKind::ALL.into_iter().find(|k| k.abbrev() == s)
}

/// Parses a cache organization by its abbreviation.
#[must_use]
pub fn parse_cache(s: &str) -> Option<CacheKind> {
    match s {
        "sa" => Some(CacheKind::SetAssociative),
        "dm" => Some(CacheKind::DirectMapped),
        _ => None,
    }
}

/// The cell-id abbreviation of a cache organization.
#[must_use]
pub fn cache_abbrev(c: CacheKind) -> &'static str {
    match c {
        CacheKind::SetAssociative => "sa",
        CacheKind::DirectMapped => "dm",
    }
}

/// Bounds on the numeric dimensions. Far wider than any feasible machine
/// (`SimConfig::validate` is the real arbiter); these only stop a crafted
/// request from allocating absurd structures before validation runs.
const DIM_MAX: u64 = 4096;

fn dim(v: &Value, key: &str, default: usize) -> Result<usize, String> {
    match v.get(key) {
        None => Ok(default),
        Some(x) => {
            let n = x
                .as_u64()
                .ok_or(format!("\"{key}\" must be a non-negative integer"))?;
            if n == 0 || n > DIM_MAX {
                return Err(format!("\"{key}\" = {n} is outside 1..={DIM_MAX}"));
            }
            Ok(usize::try_from(n).expect("DIM_MAX fits usize"))
        }
    }
}

/// Like [`dim`] but admits 0 — for knobs where 0 means "disabled"
/// (the speculation-depth limit).
fn dim0(v: &Value, key: &str, default: usize) -> Result<usize, String> {
    match v.get(key) {
        None => Ok(default),
        Some(x) => {
            let n = x
                .as_u64()
                .ok_or(format!("\"{key}\" must be a non-negative integer"))?;
            if n > DIM_MAX {
                return Err(format!("\"{key}\" = {n} is outside 0..={DIM_MAX}"));
            }
            Ok(usize::try_from(n).expect("DIM_MAX fits usize"))
        }
    }
}

fn dim_str<'v>(v: &'v Value, key: &str) -> Result<Option<&'v str>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => x
            .as_str()
            .map(Some)
            .ok_or(format!("\"{key}\" must be a string")),
    }
}

/// Parses one cell spec, applying paper-machine defaults for absent
/// dimensions.
///
/// # Errors
///
/// Returns an echo-safe reason for missing/unknown workloads, unknown
/// dimension spellings, or out-of-range numerics.
pub fn spec_from_value(v: &Value) -> Result<CellSpec, String> {
    let Value::Object(_) = v else {
        return Err("cell spec must be a JSON object".into());
    };
    let workload = dim_str(v, "workload")?.ok_or("cell spec needs a \"workload\"")?;
    let work = WorkSpec::parse(workload)?;
    let policy = match dim_str(v, "policy")? {
        None => FetchPolicy::TrueRoundRobin,
        Some(s) => parse_policy(s).ok_or(format!("unknown policy {s:?} (trr|mrr|cs|ic)"))?,
    };
    let predictor = match dim_str(v, "predictor")? {
        None => PredictorKind::SharedBtb,
        Some(s) => parse_predictor(s).ok_or(format!("unknown predictor {s:?} (btb|gsh|pbtb)"))?,
    };
    let cache = match dim_str(v, "cache")? {
        None => CacheKind::SetAssociative,
        Some(s) => parse_cache(s).ok_or(format!("unknown cache {s:?} (sa|dm)"))?,
    };
    Ok(CellSpec {
        work,
        policy,
        predictor,
        threads: dim(v, "threads", defaults::THREADS)?,
        fetch_threads: dim(v, "fetch_threads", defaults::FETCH_THREADS)?,
        fetch_width: dim(v, "fetch_width", defaults::FETCH_WIDTH)?,
        su_depth: dim(v, "su_depth", defaults::SU_DEPTH)?,
        cache,
        spec_depth: dim0(v, "spec_depth", defaults::SPEC_DEPTH)?,
    })
}

/// Serializes a spec for a request or response.
#[must_use]
pub fn spec_to_value(spec: &CellSpec) -> Value {
    Value::Object(vec![
        ("workload".into(), spec.work.name().into()),
        ("policy".into(), policy_abbrev(spec.policy).into()),
        ("predictor".into(), spec.predictor.abbrev().into()),
        ("threads".into(), (spec.threads as u64).into()),
        ("fetch_threads".into(), (spec.fetch_threads as u64).into()),
        ("fetch_width".into(), (spec.fetch_width as u64).into()),
        ("su_depth".into(), (spec.su_depth as u64).into()),
        ("cache".into(), cache_abbrev(spec.cache).into()),
        ("spec_depth".into(), (spec.spec_depth as u64).into()),
    ])
}

/// Builds the `cell` response: the spec dimensions plus every record
/// field, flat in one object, with an optional `cpi` telemetry object.
#[must_use]
pub fn cell_response(spec: &CellSpec, rec: &CellRecord, cpi: Option<&CpiBreakdown>) -> Value {
    let Value::Object(mut fields) = spec_to_value(spec) else {
        unreachable!("spec_to_value returns an object")
    };
    fields.insert(0, ("type".into(), "cell".into()));
    fields.extend([
        ("id".into(), rec.id.as_str().into()),
        ("code_version".into(), rec.code_version.as_str().into()),
        (
            "config_hash".into(),
            format!("{:#018x}", rec.config_hash).into(),
        ),
        (
            "program_hash".into(),
            format!("{:#018x}", rec.program_hash).into(),
        ),
        ("status".into(), rec.status.as_str().into()),
        ("cycles".into(), rec.cycles.into()),
        ("committed".into(), rec.committed.into()),
        ("ipc".into(), rec.ipc.into()),
        ("hit_rate".into(), rec.hit_rate.into()),
        ("branch_accuracy".into(), rec.branch_accuracy.into()),
        ("su_stalls".into(), rec.su_stalls.into()),
        ("reason".into(), rec.reason.as_str().into()),
    ]);
    if let Some(b) = cpi {
        let causes: Vec<(String, Value)> = SlotCause::ALL
            .into_iter()
            .filter(|&c| b.slot_count(c) > 0)
            .map(|c| (c.name().to_string(), b.slot_count(c).into()))
            .collect();
        fields.push((
            "cpi".into(),
            Value::Object(vec![
                ("width".into(), u64::from(b.width).into()),
                ("cycles".into(), b.cycles.into()),
                ("slots".into(), Value::Object(causes)),
            ]),
        ));
    }
    Value::Object(fields)
}

/// Client-side inverse of [`cell_response`]: recovers the design point
/// and its record (bit-exact floats included) from a `cell` line.
///
/// # Errors
///
/// Returns a reason for any missing or mistyped field.
pub fn parse_cell_response(v: &Value) -> Result<(CellSpec, CellRecord), String> {
    let spec = spec_from_value(v)?;
    let s = |key: &str| -> Result<String, String> {
        Ok(dim_str(v, key)?
            .ok_or(format!("cell response missing \"{key}\""))?
            .to_string())
    };
    let int = |key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(Value::as_u64)
            .ok_or(format!("cell response missing integer \"{key}\""))
    };
    let float = |key: &str| -> Result<f64, String> {
        v.get(key)
            .and_then(Value::as_f64)
            .ok_or(format!("cell response missing number \"{key}\""))
    };
    let hex = |key: &str| -> Result<u64, String> {
        let text = s(key)?;
        text.strip_prefix("0x")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or(format!("cell response field \"{key}\" is not a hash"))
    };
    let status_text = s("status")?;
    let status =
        CellStatus::parse(&status_text).ok_or(format!("unknown cell status {status_text:?}"))?;
    let rec = CellRecord {
        id: s("id")?,
        code_version: s("code_version")?,
        config_hash: hex("config_hash")?,
        program_hash: hex("program_hash")?,
        status,
        cycles: int("cycles")?,
        committed: int("committed")?,
        ipc: float("ipc")?,
        hit_rate: float("hit_rate")?,
        branch_accuracy: float("branch_accuracy")?,
        su_stalls: int("su_stalls")?,
        reason: s("reason")?,
    };
    if rec.id != spec.id() {
        return Err(format!(
            "cell response id {:?} does not match its dimensions ({:?})",
            rec.id,
            spec.id()
        ));
    }
    Ok((spec, rec))
}

/// Materializes the searched region a request named.
#[must_use]
pub fn search_space(work: WorkSpec, threads: usize, full_space: bool) -> SearchSpace {
    if full_space {
        SearchSpace::full(work, threads)
    } else {
        SearchSpace::smoke(work, threads)
    }
}

/// Builds the `frontier` response for a finished search: the run shape,
/// the trajectory digest (two servers answering the same request agree
/// on it iff their trajectory artifacts are byte-equal), and the
/// frontier as an array of cells with measured IPC and modeled cost, in
/// ascending-cost order.
#[must_use]
pub fn search_response(report: &SearchReport) -> Value {
    let frontier: Vec<Value> = report
        .frontier
        .iter()
        .map(|(spec, rec)| {
            let Value::Object(mut fields) = spec_to_value(spec) else {
                unreachable!("spec_to_value returns an object")
            };
            fields.extend([
                ("id".into(), rec.id.as_str().into()),
                ("status".into(), rec.status.as_str().into()),
                ("ipc".into(), rec.ipc.into()),
                ("cost".into(), hardware_cost(spec).into()),
            ]);
            Value::Object(fields)
        })
        .collect();
    Value::Object(vec![
        ("type".into(), "frontier".into()),
        (
            "evaluations".into(),
            (report.outcome.evaluations.len() as u64).into(),
        ),
        ("steps".into(), (report.outcome.steps.len() as u64).into()),
        (
            "trajectory_hash".into(),
            format!("{:#018x}", report.trajectory_hash).into(),
        ),
        ("frontier".into(), Value::Array(frontier)),
    ])
}

/// Builds a typed error response.
#[must_use]
pub fn error_response(reason: &str) -> Value {
    Value::Object(vec![
        ("type".into(), "error".into()),
        ("reason".into(), reason.into()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_experiments::json::parse_value;

    fn sieve4() -> CellSpec {
        CellSpec {
            work: WorkloadKind::Sieve.into(),
            policy: FetchPolicy::TrueRoundRobin,
            predictor: PredictorKind::SharedBtb,
            threads: 4,
            fetch_threads: 1,
            fetch_width: 4,
            su_depth: 32,
            cache: CacheKind::SetAssociative,
            spec_depth: 0,
        }
    }

    #[test]
    fn minimal_spec_gets_paper_defaults() {
        let v = parse_value(r#"{"workload":"sieve"}"#).unwrap();
        let spec = spec_from_value(&v).unwrap();
        assert_eq!(spec, sieve4());
    }

    #[test]
    fn specs_round_trip_through_the_wire_format() {
        let spec = CellSpec {
            work: WorkloadKind::Ll7.into(),
            policy: FetchPolicy::Icount,
            predictor: PredictorKind::Gshare,
            threads: 8,
            fetch_threads: 2,
            fetch_width: 8,
            su_depth: 16,
            cache: CacheKind::DirectMapped,
            spec_depth: 2,
        };
        let back = spec_from_value(&spec_to_value(&spec)).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn corpus_and_mix_workloads_round_trip_through_the_wire_format() {
        for name in ["quicksort", "mpd+matmul", "memstress+ll7"] {
            let spec = CellSpec {
                work: WorkSpec::parse(name).unwrap(),
                threads: 2,
                ..sieve4()
            };
            let back = spec_from_value(&spec_to_value(&spec)).unwrap();
            assert_eq!(back, spec, "{name}");
        }
        let v = parse_value(r#"{"workload":"mpd+not a name"}"#).unwrap();
        assert!(spec_from_value(&v).is_err(), "bad mix slots are typed");
    }

    #[test]
    fn spec_validation_is_typed_and_bounded() {
        for (bad, why) in [
            (r#"{}"#, "workload"),
            (r#"{"workload":"No Such Thing!"}"#, "neither"),
            (r#"{"workload":"sieve","threads":0}"#, "outside"),
            (r#"{"workload":"sieve","threads":5000}"#, "outside"),
            (r#"{"workload":"sieve","threads":-1}"#, "non-negative"),
            (r#"{"workload":"sieve","policy":"zz"}"#, "unknown policy"),
            (r#"{"workload":"sieve","su_depth":1.5}"#, "non-negative"),
            (r#"[]"#, "object"),
        ] {
            let v = parse_value(bad).unwrap();
            let err = spec_from_value(&v).expect_err(bad);
            assert!(err.contains(why), "{bad}: {err}");
        }
    }

    #[test]
    fn requests_parse_and_reject_by_verb() {
        let ping = parse_value(r#"{"verb":"ping"}"#).unwrap();
        assert!(matches!(Request::parse(&ping), Ok(Request::Ping)));
        let submit =
            parse_value(r#"{"verb":"submit","cells":[{"workload":"sieve"}],"progress":true}"#)
                .unwrap();
        let Ok(Request::Submit {
            cells,
            progress,
            cpi,
        }) = Request::parse(&submit)
        else {
            panic!("submit parses");
        };
        assert_eq!(cells, vec![sieve4()]);
        assert!(progress && !cpi);
        let grid = parse_value(r#"{"verb":"submit","grid":"smoke"}"#).unwrap();
        let Ok(Request::Submit { cells, .. }) = Request::parse(&grid) else {
            panic!("grid submit parses");
        };
        assert_eq!(cells.len(), Grid::smoke().cells().len());
        for bad in [
            r#"{"verb":"dance"}"#,
            r#"{"verb":42}"#,
            r#"{"noverb":1}"#,
            r#"{"verb":"submit"}"#,
            r#"{"verb":"submit","cells":[]}"#,
            r#"{"verb":"submit","grid":"bogus"}"#,
            r#"{"verb":"submit","cells":[{"workload":"sieve"}],"progress":"yes"}"#,
            r#"{"verb":"fetch"}"#,
            r#"7"#,
        ] {
            let v = parse_value(bad).unwrap();
            assert!(Request::parse(&v).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn search_requests_parse_defaults_and_reject_bad_shapes() {
        let minimal = parse_value(r#"{"verb":"search","workload":"sieve"}"#).unwrap();
        let Ok(Request::Search {
            work,
            threads,
            seed,
            mode,
            full_space,
        }) = Request::parse(&minimal)
        else {
            panic!("minimal search parses");
        };
        assert_eq!(work, WorkSpec::from(WorkloadKind::Sieve));
        assert_eq!(threads, defaults::THREADS);
        assert_eq!(seed, 0);
        assert!(matches!(mode, EvalMode::Warm { warmup } if warmup == DEFAULT_WARMUP));
        assert!(!full_space, "space defaults to smoke");

        let explicit = parse_value(
            r#"{"verb":"search","workload":"matrix","threads":2,"seed":7,"warmup":0,"space":"full"}"#,
        )
        .unwrap();
        let Ok(Request::Search {
            threads,
            seed,
            mode,
            full_space,
            ..
        }) = Request::parse(&explicit)
        else {
            panic!("explicit search parses");
        };
        assert_eq!((threads, seed), (2, 7));
        assert!(
            matches!(mode, EvalMode::Full),
            "warmup 0 means exact cold runs"
        );
        assert!(full_space);

        for bad in [
            r#"{"verb":"search"}"#,
            r#"{"verb":"search","workload":42}"#,
            r#"{"verb":"search","workload":"sieve","space":"bogus"}"#,
            r#"{"verb":"search","workload":"sieve","warmup":-1}"#,
            r#"{"verb":"search","workload":"sieve","seed":"lucky"}"#,
            r#"{"verb":"search","workload":"sieve","threads":0}"#,
        ] {
            let v = parse_value(bad).unwrap();
            assert!(Request::parse(&v).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn cell_responses_round_trip_records_bit_exactly() {
        let spec = sieve4();
        let rec = CellRecord {
            id: spec.id(),
            code_version: "0.1.0".into(),
            config_hash: 0x0123_4567_89ab_cdef,
            program_hash: 0xfedc_ba98_7654_3210,
            status: CellStatus::Done,
            cycles: 123_456,
            committed: 98_765,
            ipc: 1.234_567_890_123_456_7,
            hit_rate: 99.017_234,
            branch_accuracy: 87.5,
            su_stalls: 42,
            reason: String::new(),
        };
        let line = cell_response(&spec, &rec, None).to_line();
        let v = parse_value(&line).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("cell"));
        let (spec2, rec2) = parse_cell_response(&v).unwrap();
        assert_eq!(spec2, spec);
        assert_eq!(rec2, rec);
        assert_eq!(rec2.ipc.to_bits(), rec.ipc.to_bits());
    }

    #[test]
    fn mismatched_id_and_dimensions_are_rejected() {
        let spec = sieve4();
        let mut rec = CellRecord {
            id: "matrix-trr-t4-su32-sa".into(),
            code_version: "v".into(),
            config_hash: 1,
            program_hash: 2,
            status: CellStatus::Done,
            cycles: 1,
            committed: 1,
            ipc: 1.0,
            hit_rate: 0.0,
            branch_accuracy: 0.0,
            su_stalls: 0,
            reason: String::new(),
        };
        let v = parse_value(&cell_response(&spec, &rec, None).to_line()).unwrap();
        assert!(parse_cell_response(&v).is_err(), "forged id is caught");
        rec.id = spec.id();
        let v = parse_value(&cell_response(&spec, &rec, None).to_line()).unwrap();
        assert!(parse_cell_response(&v).is_ok());
    }
}
