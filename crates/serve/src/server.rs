//! The daemon: accept loop, worker pool, and in-flight deduplication on
//! top of one [`Scheduler`].
//!
//! Structure: [`Server::start`] binds a `TcpListener`, spawns one accept
//! thread and `opts.workers` simulation workers, and returns a handle.
//! Each connection gets its own handler thread speaking the [`proto`]
//! line protocol. Cells a submission needs are first probed against the
//! store (cache hits answer inline, without touching the worker pool);
//! misses go through a single in-flight table keyed by cell id, so any
//! number of concurrent submissions of the same cell share one
//! execution and all receive its events.
//!
//! Failure containment: each cell runs under `catch_unwind`, so a
//! watchdog trip or workload-check failure inside the simulator becomes
//! a typed per-cell error event — the worker, the other cells, and the
//! server all survive. Locks are taken with poison-tolerant guards for
//! the same reason.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};

use smt_experiments::explore::run_search;
use smt_experiments::json::{write_json_line, Frame, JsonLineReader, Value, MAX_LINE};
use smt_experiments::sweep::{CellOutcome, CellSpec, Scheduler, SweepOptions};
use smt_search::SearchParams;
use smt_workloads::Scale;

use crate::proto::{self, Request};

/// Acquires a mutex, tolerating poison: a panicking worker must not take
/// the whole server down with it (the poisoned state is a plain
/// collection that stays consistent across the panic points).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One scheduled execution.
struct Job {
    spec: CellSpec,
    /// Whether the originating submission asked for CPI telemetry. Later
    /// submissions that join the in-flight cell share this choice.
    cpi: bool,
}

/// What subscribers of a cell receive.
#[derive(Clone, Debug)]
enum Event {
    /// The cell simulated another quantum.
    Progress {
        id: String,
        cycle: u64,
        committed: u64,
    },
    /// The cell finished — with its outcome, or with the text of the
    /// panic that killed it.
    Finished {
        id: String,
        result: Result<Box<CellOutcome>, String>,
    },
}

/// State shared by the accept thread, workers, and connection handlers.
struct Shared {
    sched: Scheduler,
    addr: SocketAddr,
    queue: Mutex<VecDeque<Job>>,
    work: Condvar,
    /// Cell id → subscribers. Registration and completion both hold this
    /// lock, so a submission either joins a live execution or schedules a
    /// fresh one — never a removed entry.
    inflight: Mutex<HashMap<String, Vec<Sender<Event>>>>,
    quit: AtomicBool,
    // Counters for the `status` verb (and the dedup assertions in the
    // black-box suite).
    cached_hits: AtomicU64,
    simulated: AtomicU64,
    joined: AtomicU64,
    failed: AtomicU64,
    workers: usize,
}

impl Shared {
    /// Registers `tx` for the cell: joins the in-flight execution if one
    /// exists, otherwise enqueues a fresh job. Returns whether a job was
    /// newly scheduled.
    ///
    /// # Errors
    ///
    /// Refuses once shutdown has begun (workers may already have
    /// drained), so a late submission gets an error instead of a wedge.
    fn subscribe(&self, spec: &CellSpec, cpi: bool, tx: Sender<Event>) -> Result<bool, String> {
        let id = spec.id();
        let mut inflight = lock(&self.inflight);
        if let Some(subs) = inflight.get_mut(&id) {
            subs.push(tx);
            self.joined.fetch_add(1, Ordering::Relaxed);
            return Ok(false);
        }
        // Workers only exit after observing `quit` under the queue lock
        // with an empty queue; checking under the same lock means a job
        // we enqueue here cannot be stranded.
        let mut queue = lock(&self.queue);
        if self.quit.load(Ordering::SeqCst) {
            return Err("server is shutting down".into());
        }
        inflight.insert(id, vec![tx]);
        queue.push_back(Job {
            spec: spec.clone(),
            cpi,
        });
        self.work.notify_one();
        Ok(true)
    }

    /// Fans a progress tick out to the cell's current subscribers.
    fn tick(&self, id: &str, cycle: u64, committed: u64) {
        let inflight = lock(&self.inflight);
        if let Some(subs) = inflight.get(id) {
            for tx in subs {
                let _ = tx.send(Event::Progress {
                    id: id.to_string(),
                    cycle,
                    committed,
                });
            }
        }
    }

    /// Delivers the terminal event and retires the in-flight entry, under
    /// the same lock [`subscribe`](Self::subscribe) registers through.
    fn complete(&self, id: &str, result: &Result<Box<CellOutcome>, String>) {
        let subs = lock(&self.inflight).remove(id).unwrap_or_default();
        for tx in subs {
            let _ = tx.send(Event::Finished {
                id: id.to_string(),
                result: result.clone(),
            });
        }
    }

    fn begin_shutdown(&self) {
        self.quit.store(true, Ordering::SeqCst);
        self.work.notify_all();
        // The accept thread blocks in `incoming()`; a throwaway connection
        // to ourselves wakes it so it can observe `quit` and return.
        let _ = TcpStream::connect(self.addr);
    }
}

/// Simulation worker: pops jobs until shutdown *and* an empty queue —
/// queued work is always drained, so no subscriber waits forever.
fn worker(shared: &Shared) {
    loop {
        let job = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.quit.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared
                    .work
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let id = job.spec.id();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            shared.sched.run_cell(&job.spec, job.cpi, &mut |t| {
                shared.tick(t.id, t.cycle, t.committed);
            })
        }));
        let result = match outcome {
            Ok(o) => {
                if o.ran {
                    shared.simulated.fetch_add(1, Ordering::Relaxed);
                } else {
                    // Raced with another process sharing the store: the
                    // cell landed in cache between probe and execution.
                    shared.cached_hits.fetch_add(1, Ordering::Relaxed);
                }
                Ok(Box::new(o))
            }
            Err(panic) => {
                shared.failed.fetch_add(1, Ordering::Relaxed);
                Err(panic_text(&panic))
            }
        };
        shared.complete(&id, &result);
    }
}

fn panic_text(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "simulation panicked".to_string()
    }
}

/// A running server. Dropping the handle does *not* stop the daemon;
/// send a `shutdown` request (or use [`sweep-client shutdown`]) and then
/// [`join`](Server::join).
pub struct Server {
    addr: SocketAddr,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port), opens the store
    /// under `store`, and spawns the accept thread plus `opts.workers`
    /// simulation workers.
    ///
    /// # Errors
    ///
    /// Fails on bind or store-creation errors.
    pub fn start(addr: &str, store: &Path, opts: SweepOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let workers = opts.workers.max(1);
        let shared = Arc::new(Shared {
            sched: Scheduler::new(store, opts)?,
            addr: local,
            queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            inflight: Mutex::new(HashMap::new()),
            quit: AtomicBool::new(false),
            cached_hits: AtomicU64::new(0),
            simulated: AtomicU64::new(0),
            joined: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            workers,
        });
        let pool = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker(&shared))
            })
            .collect();
        let accept = thread::spawn(move || accept_loop(&listener, &shared));
        Ok(Server {
            addr: local,
            accept,
            workers: pool,
        })
    }

    /// The actually bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a client's `shutdown` request stops the daemon, then
    /// joins the accept thread and every worker.
    pub fn join(self) {
        let _ = self.accept.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.quit.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        thread::spawn(move || {
            // Transport errors (client vanished mid-reply) end the
            // handler; the in-flight machinery tolerates dead receivers.
            let _ = handle(stream, &shared);
        });
    }
    // Belt and braces: make sure idle workers observe `quit`.
    shared.work.notify_all();
}

/// One connection: read frames, answer each with one or more response
/// lines. Returns when the client disconnects, sends an unframeable
/// line, or asks for shutdown.
fn handle(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    let mut frames = JsonLineReader::new(BufReader::new(stream.try_clone()?));
    let mut out = stream;
    while let Some(frame) = frames.next_value()? {
        match frame {
            Frame::Oversized => {
                // The rest of the line is unread and unbounded; after the
                // error there is no safe way to resynchronize.
                let reason = format!("line exceeds the {MAX_LINE}-byte cap");
                write_json_line(&mut out, &proto::error_response(&reason))?;
                return Ok(());
            }
            Frame::Malformed(reason) => {
                write_json_line(&mut out, &proto::error_response(&reason))?;
            }
            Frame::Value(v) => match Request::parse(&v) {
                Err(reason) => {
                    write_json_line(&mut out, &proto::error_response(&reason))?;
                }
                Ok(req) => {
                    if !respond(&mut out, shared, req)? {
                        return Ok(());
                    }
                }
            },
        }
    }
    Ok(())
}

/// Executes one request. Returns `false` when the connection should
/// close (shutdown acknowledged).
fn respond(out: &mut TcpStream, shared: &Shared, req: Request) -> io::Result<bool> {
    match req {
        Request::Ping => {
            let opts = shared.sched.opts();
            let scale = match opts.scale {
                Scale::Test => "test",
                Scale::Paper => "paper",
            };
            write_json_line(
                out,
                &Value::Object(vec![
                    ("type".into(), "pong".into()),
                    ("code_version".into(), opts.code_version.as_str().into()),
                    ("scale".into(), scale.into()),
                    ("workers".into(), (shared.workers as u64).into()),
                ]),
            )?;
        }
        Request::Status => {
            let queue = lock(&shared.queue).len();
            let inflight = lock(&shared.inflight).len();
            let n = |c: &AtomicU64| Value::from(c.load(Ordering::Relaxed));
            write_json_line(
                out,
                &Value::Object(vec![
                    ("type".into(), "status".into()),
                    ("workers".into(), (shared.workers as u64).into()),
                    ("queue".into(), (queue as u64).into()),
                    ("inflight".into(), (inflight as u64).into()),
                    ("cached_hits".into(), n(&shared.cached_hits)),
                    ("simulated".into(), n(&shared.simulated)),
                    ("joined".into(), n(&shared.joined)),
                    ("failed".into(), n(&shared.failed)),
                ]),
            )?;
        }
        Request::Fetch(spec) => {
            if let Err(reason) = shared.sched.resolve(&spec.work) {
                write_json_line(out, &proto::error_response(&reason))?;
            } else if let Some(rec) = shared.sched.probe(&spec) {
                shared.cached_hits.fetch_add(1, Ordering::Relaxed);
                write_json_line(out, &proto::cell_response(&spec, &rec, None))?;
            } else {
                write_json_line(
                    out,
                    &Value::Object(vec![
                        ("type".into(), "miss".into()),
                        ("id".into(), spec.id().into()),
                    ]),
                )?;
            }
        }
        Request::Submit {
            cells,
            progress,
            cpi,
        } => submit(out, shared, &cells, progress, cpi)?,
        Request::Search {
            work,
            threads,
            seed,
            mode,
            full_space,
        } => {
            // Searches run on the handler thread: one search is a whole
            // campaign of cells, so parking a connection on it (rather
            // than a pool worker) keeps submit traffic flowing. The
            // store-level cache still dedups the cells themselves.
            if let Err(reason) = shared.sched.resolve(&work) {
                write_json_line(out, &proto::error_response(&reason))?;
                return Ok(true);
            }
            let space = proto::search_space(work, threads, full_space);
            let params = SearchParams {
                seed,
                ..SearchParams::default()
            };
            let report = catch_unwind(AssertUnwindSafe(|| {
                run_search(&shared.sched, &space, mode, &params)
            }));
            match report {
                Ok(Ok(report)) => {
                    shared
                        .simulated
                        .fetch_add(report.outcome.evaluations.len() as u64, Ordering::Relaxed);
                    write_json_line(out, &proto::search_response(&report))?;
                }
                Ok(Err(e)) => {
                    shared.failed.fetch_add(1, Ordering::Relaxed);
                    write_json_line(
                        out,
                        &proto::error_response(&format!("search I/O failed: {e}")),
                    )?;
                }
                Err(panic) => {
                    shared.failed.fetch_add(1, Ordering::Relaxed);
                    write_json_line(out, &proto::error_response(&panic_text(&panic)))?;
                }
            }
        }
        Request::Shutdown => {
            write_json_line(out, &Value::Object(vec![("type".into(), "bye".into())]))?;
            shared.begin_shutdown();
            return Ok(false);
        }
    }
    Ok(true)
}

/// The submit flow: probe every cell against the store, answer hits
/// inline, schedule-or-join the misses, then stream events until all
/// have finished.
fn submit(
    out: &mut TcpStream,
    shared: &Shared,
    cells: &[CellSpec],
    progress: bool,
    cpi: bool,
) -> io::Result<()> {
    // Dedup within the request (a grid plus explicit cells may overlap),
    // preserving first-occurrence order.
    let mut seen = HashSet::new();
    let unique: Vec<&CellSpec> = cells.iter().filter(|s| seen.insert(s.id())).collect();

    let (tx, rx) = channel();
    let mut cached = Vec::new();
    let (mut scheduled, mut joined, mut refused) = (0u64, 0u64, Vec::new());
    for spec in &unique {
        // Admission check: a typo'd corpus name (or a corpus-less server)
        // answers with a typed per-cell error instead of writing an
        // infeasible record into the shared store.
        if let Err(reason) = shared.sched.resolve(&spec.work) {
            refused.push((spec.id(), reason));
            continue;
        }
        if let Some(rec) = shared.sched.probe(spec) {
            shared.cached_hits.fetch_add(1, Ordering::Relaxed);
            cached.push(((*spec).clone(), rec));
        } else {
            match shared.subscribe(spec, cpi, tx.clone()) {
                Ok(true) => scheduled += 1,
                Ok(false) => joined += 1,
                Err(reason) => refused.push((spec.id(), reason)),
            }
        }
    }
    drop(tx);

    write_json_line(
        out,
        &Value::Object(vec![
            ("type".into(), "accepted".into()),
            ("total".into(), (unique.len() as u64).into()),
            ("cached".into(), (cached.len() as u64).into()),
            ("scheduled".into(), scheduled.into()),
            ("joined".into(), joined.into()),
        ]),
    )?;
    let mut failed = 0u64;
    for (id, reason) in refused {
        failed += 1;
        write_json_line(out, &cell_error(&id, &reason))?;
    }
    for (spec, rec) in &cached {
        write_json_line(out, &proto::cell_response(spec, rec, None))?;
    }

    let mut pending = scheduled + joined;
    while pending > 0 {
        // Workers drain the queue even during shutdown and `complete`
        // always fires (panics included), so this cannot wedge; a closed
        // channel here would mean a worker died outside its unwind guard.
        let Ok(event) = rx.recv() else {
            failed += pending;
            write_json_line(
                out,
                &proto::error_response("server lost a worker; remaining cells abandoned"),
            )?;
            break;
        };
        match event {
            Event::Progress {
                id,
                cycle,
                committed,
            } => {
                if progress {
                    write_json_line(
                        out,
                        &Value::Object(vec![
                            ("type".into(), "progress".into()),
                            ("id".into(), id.into()),
                            ("cycle".into(), cycle.into()),
                            ("committed".into(), committed.into()),
                        ]),
                    )?;
                }
            }
            Event::Finished { id, result } => {
                pending -= 1;
                match result {
                    Ok(o) => {
                        write_json_line(
                            out,
                            &proto::cell_response(&o.spec, &o.rec, o.cpi.as_ref()),
                        )?;
                    }
                    Err(reason) => {
                        failed += 1;
                        write_json_line(out, &cell_error(&id, &reason))?;
                    }
                }
            }
        }
    }

    write_json_line(
        out,
        &Value::Object(vec![
            ("type".into(), "done".into()),
            ("total".into(), (unique.len() as u64).into()),
            ("failed".into(), failed.into()),
        ]),
    )
}

/// A per-cell failure inside a submit stream: an `error` carrying the
/// cell id, so the client can account for it against `total`.
fn cell_error(id: &str, reason: &str) -> Value {
    Value::Object(vec![
        ("type".into(), "error".into()),
        ("id".into(), id.into()),
        ("reason".into(), reason.into()),
    ])
}
