//! Command-line client for the simulation server.
//!
//! ```text
//! sweep-client --addr 127.0.0.1:7711 ping
//! sweep-client --addr 127.0.0.1:7711 status
//! sweep-client --addr 127.0.0.1:7711 submit --grid paper --out results.json
//! sweep-client --addr 127.0.0.1:7711 submit \
//!     --cell '{"workload":"sieve","policy":"ic","threads":8}' --progress --cpi
//! sweep-client --addr 127.0.0.1:7711 fetch '{"workload":"sieve"}'
//! sweep-client --addr 127.0.0.1:7711 shutdown
//! ```
//!
//! `submit` prints one line per answered cell and, with `--out`, writes
//! the merged `results.json` — byte-identical to what a batch `sweep`
//! run over the same cells would produce. Exits nonzero if any cell
//! failed or the server refused the submission.

use std::process::ExitCode;

use smt_experiments::json::parse_value;
use smt_serve::client::Client;
use smt_serve::proto;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn connect(args: &[String]) -> Client {
    let addr = flag_value(args, "--addr").expect("--addr <host:port> is required");
    Client::connect(&addr).unwrap_or_else(|e| panic!("sweep-client: cannot reach {addr}: {e}"))
}

fn parse_cell(text: &str) -> smt_experiments::sweep::CellSpec {
    let v = parse_value(text).unwrap_or_else(|e| panic!("--cell is not JSON: {e}"));
    proto::spec_from_value(&v).unwrap_or_else(|e| panic!("--cell is not a cell spec: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let verb = args
        .iter()
        .find(|a| !a.starts_with("--") && flag_value(&args, "--addr").as_deref() != Some(a))
        .cloned()
        .expect("usage: sweep-client --addr <host:port> ping|status|submit|fetch|shutdown …");

    match verb.as_str() {
        "ping" => {
            let pong = connect(&args).ping().expect("ping failed");
            println!("{}", pong.to_line());
        }
        "status" => {
            let status = connect(&args).status().expect("status failed");
            println!("{}", status.to_line());
        }
        "fetch" => {
            let spec_text = args
                .iter()
                .skip_while(|a| a.as_str() != "fetch")
                .nth(1)
                .expect("usage: sweep-client --addr <host:port> fetch '<cell json>'");
            let spec = parse_cell(spec_text);
            match connect(&args).fetch(&spec).expect("fetch failed") {
                Some(rec) => println!("{}: {} ipc={:?}", rec.id, rec.status.as_str(), rec.ipc),
                None => {
                    println!("{}: miss", spec.id());
                    return ExitCode::FAILURE;
                }
            }
        }
        "shutdown" => {
            connect(&args).shutdown().expect("shutdown failed");
            println!("sweep-client: server acknowledged shutdown");
        }
        "submit" => {
            let cells: Vec<_> = args
                .iter()
                .enumerate()
                .filter(|(_, a)| a.as_str() == "--cell")
                .map(|(i, _)| parse_cell(args.get(i + 1).expect("--cell takes a JSON cell spec")))
                .collect();
            let grid = flag_value(&args, "--grid");
            assert!(
                !cells.is_empty() || grid.is_some(),
                "submit needs --grid <name> and/or --cell '<json>'"
            );
            let progress = args.iter().any(|a| a == "--progress");
            let cpi = args.iter().any(|a| a == "--cpi");
            let outcome = connect(&args)
                .submit(&cells, grid.as_deref(), progress, cpi, &mut |p| {
                    eprintln!("… {} @ cycle {} ({} committed)", p.id, p.cycle, p.committed);
                })
                .expect("submit failed");
            for (_, rec) in &outcome.cells {
                println!("{}: {} ipc={:?}", rec.id, rec.status.as_str(), rec.ipc);
            }
            for (id, reason) in &outcome.failed {
                eprintln!("FAILED {id}: {reason}");
            }
            eprintln!(
                "sweep-client: {} cells ({} cached, {} scheduled, {} joined, {} failed)",
                outcome.cells.len() + outcome.failed.len(),
                outcome.cached,
                outcome.scheduled,
                outcome.joined,
                outcome.failed.len()
            );
            if let Some(path) = flag_value(&args, "--out") {
                std::fs::write(&path, outcome.results_json()).expect("writing --out failed");
                eprintln!("sweep-client: results at {path}");
            }
            if !outcome.failed.is_empty() {
                return ExitCode::FAILURE;
            }
        }
        other => panic!("unknown verb {other:?} (ping|status|submit|fetch|shutdown)"),
    }
    ExitCode::SUCCESS
}
