//! The persistent simulation server.
//!
//! Binds a TCP listener, opens (or creates) a content-addressed cell
//! store, and serves the line-delimited JSON protocol until a client
//! sends `shutdown`. Several servers may share one `--store` directory
//! — every store write is atomic tmp+rename, so concurrent processes
//! de-duplicate through the filesystem.
//!
//! ```text
//! cargo run --release -p smt-serve --bin serve -- --store target/serve
//! cargo run --release -p smt-serve --bin serve -- \
//!     --addr 127.0.0.1:7711 --store target/serve --scale paper --workers 8
//! cargo run --release -p smt-serve --bin serve -- \
//!     --store target/serve --corpus corpus
//! ```
//!
//! `--corpus <dir>` attaches an on-disk workload corpus: submissions may
//! then name corpus kernels and `'+'`-joined per-thread mixes
//! (`mpd+matmul`) as workloads.
//!
//! The first stdout line is always
//! `serve: listening on <ip>:<port> (...)` — scripts and the test
//! suites parse it to learn the ephemeral port when `--addr` ends in
//! `:0` (the default).

use std::path::PathBuf;
use std::sync::Arc;

use smt_corpus::Corpus;
use smt_experiments::sweep::SweepOptions;
use smt_serve::server::Server;
use smt_workloads::Scale;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let store = PathBuf::from(
        flag_value(&args, "--store").expect("--store <dir> is required (the shared cell store)"),
    );
    let addr = flag_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:0".to_string());
    let scale = match flag_value(&args, "--scale").as_deref() {
        None | Some("test") => Scale::Test,
        Some("paper") => Scale::Paper,
        Some(other) => panic!("--scale takes test|paper, not {other}"),
    };
    let mut opts = SweepOptions {
        scale,
        ..SweepOptions::default()
    };
    if let Some(w) = flag_value(&args, "--workers") {
        opts.workers = w.parse().expect("--workers takes a positive integer");
        assert!(opts.workers > 0, "--workers takes a positive integer");
    }
    if let Some(n) = flag_value(&args, "--checkpoint-every") {
        let n: u64 = n.parse().expect("--checkpoint-every takes a cycle count");
        assert!(n > 0, "--checkpoint-every takes a positive cycle count");
        opts.checkpoint_every = Some(n);
    }
    if let Some(v) = flag_value(&args, "--code-version") {
        opts.code_version = v;
    }
    // With a corpus attached, submissions may name corpus kernels and
    // '+'-joined per-thread mixes; without one, such cells are refused
    // with a typed error at admission.
    if let Some(dir) = flag_value(&args, "--corpus") {
        let corpus = Corpus::load(&dir)
            .unwrap_or_else(|e| panic!("--corpus {dir}: cannot load the workload corpus: {e}"));
        opts.corpus = Some(Arc::new(corpus));
    }

    let workers = opts.workers;
    let server = Server::start(&addr, &store, opts).expect("serve: bind/store failed");
    // Scripts parse this exact first line for the bound port.
    println!(
        "serve: listening on {} ({} workers, store {})",
        server.addr(),
        workers,
        store.display()
    );
    server.join();
    println!("serve: shut down");
}
