//! Blocking client for the serve protocol, used by the `sweep-client`
//! binary and the black-box test suites.
//!
//! The client owns one TCP connection and runs one request/response
//! exchange at a time. [`Client::submit`] streams: it forwards progress
//! events to a callback as they arrive and returns once the server's
//! `done` line lands, with every cell record reconstructed bit-exactly
//! — [`SubmitOutcome::results_json`] then renders the same bytes a batch
//! sweep's `results.json` would hold.

use std::fmt;
use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};

use smt_experiments::json::{write_json_line, Frame, JsonLineReader, Value};
use smt_experiments::sweep::{results_json, CellRecord, CellSpec};

use crate::proto::{self};

/// Anything that can go wrong talking to a server.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server's bytes did not follow the protocol (wrong type, bad
    /// frame, connection closed mid-exchange).
    Protocol(String),
    /// The server answered with a typed `error` response.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(s) => write!(f, "protocol violation: {s}"),
            ClientError::Server(s) => write!(f, "server error: {s}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One progress observation forwarded during [`Client::submit`].
#[derive(Clone, Debug)]
pub struct Progress {
    /// The simulating cell's id.
    pub id: String,
    /// Current simulated cycle.
    pub cycle: u64,
    /// Instructions committed so far.
    pub committed: u64,
}

/// What one submission produced.
#[derive(Clone, Debug)]
pub struct SubmitOutcome {
    /// Every produced cell, sorted by id — the batch sweep's merge order.
    pub cells: Vec<(CellSpec, CellRecord)>,
    /// Cells answered from the server's store without simulating.
    pub cached: u64,
    /// Cells the server scheduled fresh for this submission.
    pub scheduled: u64,
    /// Cells that joined an execution another submission started.
    pub joined: u64,
    /// Per-cell failures: `(cell id, reason)`.
    pub failed: Vec<(String, String)>,
}

impl SubmitOutcome {
    /// Renders the cells exactly as a batch sweep writes `results.json`
    /// (sorted, one object per cell, shortest-round-trip floats) — byte
    /// identity between served and batch results is the core contract.
    #[must_use]
    pub fn results_json(&self) -> String {
        results_json(&self.cells)
    }
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    frames: JsonLineReader<BufReader<TcpStream>>,
    out: TcpStream,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Fails on resolution or connection errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let out = TcpStream::connect(addr)?;
        Ok(Client {
            frames: JsonLineReader::new(BufReader::new(out.try_clone()?)),
            out,
        })
    }

    fn send(&mut self, req: &Value) -> Result<(), ClientError> {
        write_json_line(&mut self.out, req)?;
        Ok(())
    }

    /// Reads one response object, surfacing typed server errors.
    fn read_response(&mut self) -> Result<Value, ClientError> {
        match self.frames.next_value()? {
            None => Err(ClientError::Protocol(
                "connection closed mid-exchange".into(),
            )),
            Some(Frame::Value(v)) => {
                let kind = v
                    .get("type")
                    .and_then(Value::as_str)
                    .ok_or_else(|| ClientError::Protocol("response without a type".into()))?;
                // A submit-stream per-cell error carries an id and is part
                // of the stream, not a terminal failure; only id-less
                // errors abort the exchange here.
                if kind == "error" && v.get("id").is_none() {
                    let reason = v
                        .get("reason")
                        .and_then(Value::as_str)
                        .unwrap_or("unspecified")
                        .to_string();
                    return Err(ClientError::Server(reason));
                }
                Ok(v)
            }
            Some(_) => Err(ClientError::Protocol(
                "server sent an unparseable line".into(),
            )),
        }
    }

    fn expect(&mut self, kind: &str) -> Result<Value, ClientError> {
        let v = self.read_response()?;
        let got = v.get("type").and_then(Value::as_str).unwrap_or("");
        if got == kind {
            Ok(v)
        } else {
            Err(ClientError::Protocol(format!(
                "expected a {kind:?} response, got {got:?}"
            )))
        }
    }

    /// Liveness probe; returns the server's `pong` (code version, scale,
    /// worker count).
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server errors.
    pub fn ping(&mut self) -> Result<Value, ClientError> {
        self.send(&verb("ping"))?;
        self.expect("pong")
    }

    /// Queue/worker/counter snapshot.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server errors.
    pub fn status(&mut self) -> Result<Value, ClientError> {
        self.send(&verb("status"))?;
        self.expect("status")
    }

    /// Cache-only probe for one cell: its record if the server's store
    /// holds it, `None` on a miss. Never triggers simulation.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server errors.
    pub fn fetch(&mut self, spec: &CellSpec) -> Result<Option<CellRecord>, ClientError> {
        self.send(&Value::Object(vec![
            ("verb".into(), "fetch".into()),
            ("cell".into(), proto::spec_to_value(spec)),
        ]))?;
        let v = self.read_response()?;
        match v.get("type").and_then(Value::as_str) {
            Some("cell") => {
                let (_, rec) = proto::parse_cell_response(&v).map_err(ClientError::Protocol)?;
                Ok(Some(rec))
            }
            Some("miss") => Ok(None),
            other => Err(ClientError::Protocol(format!(
                "expected cell|miss, got {other:?}"
            ))),
        }
    }

    /// Submits cells (and/or a named grid) and blocks until every one
    /// has been answered, forwarding progress events to `on_progress`.
    ///
    /// `cpi` asks the server to attach a live CPI-stack breakdown to
    /// freshly simulated cells (cached cells never carry one).
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server errors (a rejected submission —
    /// unknown grid, over-cap cell count — surfaces as
    /// [`ClientError::Server`]). Per-cell simulation failures do *not*
    /// error: they land in [`SubmitOutcome::failed`].
    pub fn submit(
        &mut self,
        cells: &[CellSpec],
        grid: Option<&str>,
        progress: bool,
        cpi: bool,
        on_progress: &mut dyn FnMut(Progress),
    ) -> Result<SubmitOutcome, ClientError> {
        let mut fields = vec![("verb".into(), Value::from("submit"))];
        if let Some(name) = grid {
            fields.push(("grid".into(), name.into()));
        }
        if !cells.is_empty() {
            fields.push((
                "cells".into(),
                Value::Array(cells.iter().map(proto::spec_to_value).collect()),
            ));
        }
        if progress {
            fields.push(("progress".into(), true.into()));
        }
        if cpi {
            fields.push(("cpi".into(), true.into()));
        }
        self.send(&Value::Object(fields))?;

        let accepted = self.expect("accepted")?;
        let count = |key: &str| accepted.get(key).and_then(Value::as_u64).unwrap_or(0);
        let mut outcome = SubmitOutcome {
            cells: Vec::new(),
            cached: count("cached"),
            scheduled: count("scheduled"),
            joined: count("joined"),
            failed: Vec::new(),
        };
        loop {
            let v = self.read_response()?;
            match v.get("type").and_then(Value::as_str) {
                Some("cell") => {
                    let pair = proto::parse_cell_response(&v).map_err(ClientError::Protocol)?;
                    outcome.cells.push(pair);
                }
                Some("progress") => {
                    let field = |k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
                    on_progress(Progress {
                        id: v
                            .get("id")
                            .and_then(Value::as_str)
                            .unwrap_or_default()
                            .to_string(),
                        cycle: field("cycle"),
                        committed: field("committed"),
                    });
                }
                Some("error") => {
                    // Per-cell failure inside the stream (id-less errors
                    // were already turned into Err by read_response).
                    let text = |k: &str| {
                        v.get(k)
                            .and_then(Value::as_str)
                            .unwrap_or_default()
                            .to_string()
                    };
                    outcome.failed.push((text("id"), text("reason")));
                }
                Some("done") => break,
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected {other:?} in submit stream"
                    )))
                }
            }
        }
        outcome.cells.sort_by(|a, b| a.1.id.cmp(&b.1.id));
        Ok(outcome)
    }

    /// Asks the server to stop. Consumes the client: the connection is
    /// closed once the server acknowledges.
    ///
    /// # Errors
    ///
    /// Transport, protocol, or server errors.
    pub fn shutdown(mut self) -> Result<(), ClientError> {
        self.send(&verb("shutdown"))?;
        self.expect("bye")?;
        Ok(())
    }
}

fn verb(name: &str) -> Value {
    Value::Object(vec![("verb".into(), name.into())])
}
