//! Sweep-as-a-service: the design-space engine behind a TCP socket.
//!
//! `smt-serve` wraps the batch sweep machinery
//! ([`smt_experiments::sweep`]) in a persistent daemon. A server owns a
//! content-addressed cell store and a worker pool; clients connect over
//! TCP, speak newline-delimited JSON ([`proto`]), and submit single
//! cells or whole grids. Cells already in the store are answered from
//! cache in microseconds; misses are simulated once — concurrent
//! submissions of the same cell share one execution — and streamed back
//! as they finish, optionally with per-quantum progress telemetry and a
//! live CPI-stack breakdown.
//!
//! Because the store is the same atomic tmp+rename cell cache the batch
//! `sweep` binary uses, several server processes can share one store
//! directory for multi-process scale-out, and results served over the
//! socket are byte-identical to a batch run's `results.json` (the
//! black-box suite asserts this).
//!
//! Modules:
//!
//! - [`proto`] — wire format: requests, responses, spec/record codecs.
//! - [`server`] — accept loop, worker pool, in-flight dedup, shutdown.
//! - [`client`] — blocking client used by `sweep-client` and the tests.

pub mod client;
pub mod proto;
pub mod server;
