//! Crash-resume at the service level: SIGKILL a `serve` process while a
//! grid is streaming, restart it over the same store, resubmit, and get
//! the complete grid — with the surviving partial work reused, and the
//! final results byte-identical to an uninterrupted batch sweep.

use std::fs;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use smt_experiments::sweep::{run_sweep, Grid, SweepOptions};
use smt_serve::client::{Client, ClientError};
use smt_workloads::Scale;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smt-serve-resume-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn spawn(store: &Path, workers: usize) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--store",
            store.to_str().expect("utf-8 store path"),
            "--scale",
            "test",
            "--workers",
            &workers.to_string(),
            "--checkpoint-every",
            "200",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve process spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut first = String::new();
    BufReader::new(stdout)
        .read_line(&mut first)
        .expect("serve announces its address");
    let addr = first
        .strip_prefix("serve: listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("unparseable announcement {first:?}"));
    (child, addr)
}

#[test]
fn sigkill_mid_grid_then_restart_resubmit_completes_byte_identically() {
    // Reference: what the grid's results must look like, produced by the
    // batch path with no server involved.
    let reference_out = scratch("reference");
    let reference_opts = SweepOptions {
        scale: Scale::Test,
        workers: 2,
        ..SweepOptions::default()
    };
    run_sweep(&Grid::smoke(), &reference_out, &reference_opts).expect("reference sweep");
    let reference = fs::read_to_string(reference_out.join("results.json")).expect("reference");

    // Victim server: one slow worker so the grid is still mid-flight
    // when the signal lands.
    let store = scratch("victim");
    let (mut child, addr) = spawn(&store, 1);
    let submitter = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client.submit(&[], Some("smoke"), false, false, &mut |_| {})
    });

    // SIGKILL as soon as the store shows progress (some cells finished,
    // the rest queued or in flight) — no notice, no flushing, exactly
    // what a crashed or OOM-killed worker box looks like.
    let cells = store.join("cells");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let finished = fs::read_dir(&cells).map(|d| d.count()).unwrap_or(0);
        if finished >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "no cell ever finished");
        std::thread::sleep(Duration::from_millis(2));
    }
    child.kill().expect("SIGKILL delivered");
    child.wait().expect("victim reaped");

    // The client sees a dead socket, not a wedge and not silent success.
    let severed = submitter.join().expect("submitter thread");
    match severed {
        Err(ClientError::Io(_) | ClientError::Protocol(_)) => {}
        Err(other) => panic!("expected a transport failure, got {other}"),
        Ok(outcome) => {
            // The race can legitimately finish the whole grid before the
            // signal lands; only then is success acceptable.
            assert_eq!(
                outcome.cells.len(),
                Grid::smoke().cells().len(),
                "partial grid reported as success"
            );
        }
    }

    // Restart over the same store and resubmit: survivors come from
    // cache, the rest (including any half-written checkpoint state)
    // simulate to completion.
    let (mut child, addr) = spawn(&store, 2);
    let mut client = Client::connect(addr).expect("reconnect");
    let outcome = client
        .submit(&[], Some("smoke"), false, false, &mut |_| {})
        .expect("resubmit after restart");
    assert_eq!(outcome.cells.len(), Grid::smoke().cells().len());
    assert!(outcome.failed.is_empty());
    assert!(
        outcome.cached >= 1,
        "work finished before the kill must be reused, not redone"
    );
    assert_eq!(
        outcome.results_json(),
        reference,
        "crash + restart + resubmit must converge on the batch-sweep bytes"
    );

    Client::connect(addr)
        .expect("connect")
        .shutdown()
        .expect("clean shutdown");
    child.wait().expect("server exits");
    let _ = fs::remove_dir_all(&store);
    let _ = fs::remove_dir_all(&reference_out);
}
