//! Adversarial input suite: the seed-deterministic malformed-request
//! generator ([`smt_testkit::netfuzz`]) drives a live in-process server
//! with hostile traffic — truncated lines, junk bytes, oversized fields,
//! type confusion, nesting bombs, and valid requests shredded across TCP
//! segments — and asserts the survival contract on every exchange:
//!
//! - every framed bad line is answered with a typed `error` response;
//! - the connection stays usable afterwards (except the documented
//!   oversized-line close), proven by a follow-up `ping`;
//! - the server never panics or wedges (every read runs under a
//!   timeout), and its store is never touched by rejected traffic;
//! - after the whole barrage, the server still simulates correctly.

use std::fs;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use smt_experiments::json::{parse_value, Value, MAX_LINE};
use smt_experiments::sweep::SweepOptions;
use smt_serve::client::Client;
use smt_serve::server::Server;
use smt_testkit::netfuzz::{self, Expect, FuzzCase};
use smt_testkit::Rng;
use smt_workloads::Scale;

/// How long a read may block before the suite calls the server wedged.
const WEDGE: Duration = Duration::from_secs(30);

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smt-serve-fuzz-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn start(tag: &str) -> (Server, PathBuf) {
    let store = scratch(tag);
    let opts = SweepOptions {
        scale: Scale::Test,
        workers: 1,
        checkpoint_every: None,
        batch: None,
        ..SweepOptions::default()
    };
    let srv = Server::start("127.0.0.1:0", &store, opts).expect("server starts");
    (srv, store)
}

fn connect(srv: &Server) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(srv.addr()).expect("connect");
    stream
        .set_read_timeout(Some(WEDGE))
        .expect("read timeout set");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

/// Reads one response line; panics (failing the test) on a wedge.
fn read_response(reader: &mut BufReader<TcpStream>, label: &str) -> Value {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(n) => assert!(n > 0, "{label}: server closed instead of answering"),
        Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
            panic!("{label}: server wedged (no response within {WEDGE:?})")
        }
        Err(e) => panic!("{label}: transport error: {e}"),
    }
    parse_value(line.trim_end())
        .unwrap_or_else(|e| panic!("{label}: server sent invalid JSON {line:?}: {e}"))
}

fn kind(v: &Value) -> &str {
    v.get("type").and_then(Value::as_str).unwrap_or("")
}

/// Delivers one fuzz case on a fresh connection and asserts its contract.
fn deliver(srv: &Server, case: &FuzzCase) {
    let (mut stream, mut reader) = connect(srv);
    for segment in &case.segments {
        // An oversized line can be answered (and the socket closed) while
        // we are still writing it; treat write failure past that point as
        // the close it is, not a test failure.
        if let Err(e) = stream.write_all(segment) {
            assert!(
                case.expect == Expect::ErrorMaybeClose,
                "{}: write failed mid-case: {e}",
                case.label
            );
            break;
        }
    }
    match case.expect {
        Expect::Ok => {
            let v = read_response(&mut reader, case.label);
            assert_ne!(
                kind(&v),
                "error",
                "{}: valid-but-shredded request was rejected: {}",
                case.label,
                v.to_line()
            );
        }
        Expect::ErrorLine => {
            let v = read_response(&mut reader, case.label);
            assert_eq!(
                kind(&v),
                "error",
                "{}: expected a typed error, got {}",
                case.label,
                v.to_line()
            );
            assert!(
                v.get("reason").and_then(Value::as_str).is_some(),
                "{}: error carries a reason",
                case.label
            );
            // The stream must still be positioned on a line boundary:
            // a follow-up ping gets a pong on the same connection.
            stream
                .write_all(b"{\"verb\":\"ping\"}\n")
                .expect("follow-up ping");
            let pong = read_response(&mut reader, case.label);
            assert_eq!(
                kind(&pong),
                "pong",
                "{}: connection unusable after the error",
                case.label
            );
        }
        Expect::ErrorMaybeClose => {
            let v = read_response(&mut reader, case.label);
            assert_eq!(kind(&v), "error", "{}: expected a typed error", case.label);
            // The server is allowed (and expected) to close now; the only
            // forbidden outcome is a wedge, which the read timeout and
            // the post-barrage liveness test cover.
            let mut rest = Vec::new();
            let _ = reader.read_to_end(&mut rest);
        }
    }
}

#[test]
fn testkit_line_cap_matches_the_protocol() {
    // netfuzz duplicates the cap so the testkit stays dependency-free;
    // if the protocol cap ever moves, this is the tripwire.
    assert_eq!(netfuzz::LINE_CAP, MAX_LINE);
}

#[test]
fn hostile_traffic_always_gets_typed_errors_and_never_kills_the_server() {
    let (srv, store) = start("barrage");
    for seed in 0..200 {
        let case = netfuzz::malformed_request(&mut Rng::new(seed));
        deliver(&srv, &case);
    }

    // Rejected traffic must never have touched the store…
    assert_eq!(
        fs::read_dir(store.join("cells"))
            .expect("cells dir")
            .count(),
        0,
        "hostile traffic corrupted (wrote into) the store"
    );
    // …or poisoned the scheduler: a real submission still simulates.
    let mut client = Client::connect(srv.addr()).expect("connect");
    let status = client.status().expect("status after barrage");
    assert_eq!(
        status.get("failed").and_then(Value::as_u64),
        Some(0),
        "no worker ever panicked"
    );
    let outcome = client
        .submit(
            &[smt_experiments::sweep::CellSpec {
                threads: 2,
                ..smt_experiments::sweep::CellSpec::default()
            }],
            None,
            false,
            false,
            &mut |_| {},
        )
        .expect("server still simulates after the barrage");
    assert_eq!(outcome.cells.len(), 1);
    Client::connect(srv.addr())
        .expect("connect")
        .shutdown()
        .expect("clean shutdown");
    srv.join();
    let _ = fs::remove_dir_all(&store);
}

#[test]
fn interleaved_garbage_and_real_requests_share_a_connection() {
    // The per-line recovery contract, without reconnecting: error lines
    // and real responses interleave on one socket in request order.
    let (srv, store) = start("interleaved");
    let (mut stream, mut reader) = connect(&srv);
    let mut rng = Rng::new(7);
    for round in 0..32 {
        let case = netfuzz::malformed_request(&mut rng);
        if case.expect != Expect::ErrorLine {
            continue; // splits/oversized manage their own connections
        }
        for segment in &case.segments {
            stream.write_all(segment).expect("garbage written");
        }
        let err = read_response(&mut reader, case.label);
        assert_eq!(kind(&err), "error", "round {round}: {}", case.label);
        stream
            .write_all(b"{\"verb\":\"status\"}\n")
            .expect("status written");
        let status = read_response(&mut reader, "status");
        assert_eq!(kind(&status), "status", "round {round}");
    }
    Client::connect(srv.addr())
        .expect("connect")
        .shutdown()
        .expect("clean shutdown");
    srv.join();
    let _ = fs::remove_dir_all(&store);
}
