//! Multi-process scale-out: several real `serve` processes sharing one
//! store directory through nothing but the filesystem's atomic
//! tmp+rename writes. Two servers race the same grid from independent
//! clients; every cell file must be well-formed (no torn writes) and
//! both submissions must reconstruct byte-identical results.

use std::fs;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use smt_serve::client::Client;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smt-serve-multi-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A `serve` process on an ephemeral port, with the port parsed from its
/// first stdout line.
struct ServerProc {
    child: Child,
    addr: SocketAddr,
}

impl ServerProc {
    fn spawn(store: &Path, workers: usize) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
            .args([
                "--addr",
                "127.0.0.1:0",
                "--store",
                store.to_str().expect("utf-8 store path"),
                "--scale",
                "test",
                "--workers",
                &workers.to_string(),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("serve process spawns");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut first = String::new();
        BufReader::new(stdout)
            .read_line(&mut first)
            .expect("serve announces its address");
        // First line: "serve: listening on 127.0.0.1:PORT (...)".
        let addr = first
            .strip_prefix("serve: listening on ")
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|a| a.parse().ok())
            .unwrap_or_else(|| panic!("unparseable announcement {first:?}"));
        ServerProc { child, addr }
    }

    fn stop(mut self) {
        if let Ok(client) = Client::connect(self.addr) {
            let _ = client.shutdown();
        }
        let _ = self.child.wait();
    }
}

#[test]
fn two_servers_race_one_grid_over_a_shared_store_without_tearing() {
    let store = scratch("race");
    let a = ServerProc::spawn(&store, 2);
    let b = ServerProc::spawn(&store, 2);

    // Both clients submit the whole grid at the same moment. Within each
    // process the in-flight table dedups; across processes only the
    // atomic store writes do — both must converge on one set of records.
    let race: Vec<_> = [a.addr, b.addr]
        .into_iter()
        .map(|addr| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client
                    .submit(&[], Some("smoke"), false, false, &mut |_| {})
                    .expect("racing grid submit")
            })
        })
        .collect();
    let outcomes: Vec<_> = race.into_iter().map(|t| t.join().expect("join")).collect();

    for o in &outcomes {
        assert!(
            o.failed.is_empty(),
            "cells failed under cross-process racing: {:?}",
            o.failed
        );
    }
    assert_eq!(outcomes[0].cells.len(), outcomes[1].cells.len());
    assert_eq!(
        outcomes[0].results_json(),
        outcomes[1].results_json(),
        "racing servers must serve byte-identical results"
    );

    // No torn cells: every store file is a complete, validated record —
    // a third server probing pure cache must reproduce the same bytes.
    let c = ServerProc::spawn(&store, 1);
    let mut client = Client::connect(c.addr).expect("connect");
    let cached = client
        .submit(&[], Some("smoke"), false, false, &mut |_| {})
        .expect("cache-only submit");
    assert_eq!(
        cached.cached,
        cached.cells.len() as u64,
        "every record validated straight from the shared store"
    );
    assert_eq!(cached.results_json(), outcomes[0].results_json());

    a.stop();
    b.stop();
    c.stop();
    let _ = fs::remove_dir_all(&store);
}
