//! Black-box protocol suite: an in-process server on an ephemeral port,
//! driven over raw `TcpStream`s (and through the [`Client`] where
//! convenience matters), asserting the wire contract end to end — happy
//! path, whole-grid submission, in-flight dedup, the cached fast path,
//! and byte-identity between served results and a direct batch sweep.

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use smt_corpus::Corpus;
use smt_experiments::json::{parse_value, Value};
use smt_experiments::sweep::{run_sweep, CellSpec, Grid, SweepOptions};
use smt_serve::client::Client;
use smt_serve::server::Server;
use smt_workloads::{Scale, WorkloadKind};

/// A fresh store directory, unique per test for parallel runs.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smt-serve-proto-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn opts(workers: usize) -> SweepOptions {
    SweepOptions {
        scale: Scale::Test,
        workers,
        checkpoint_every: None,
        batch: None,
        ..SweepOptions::default()
    }
}

/// Starts a server on an ephemeral port over a fresh store.
fn server(tag: &str, workers: usize) -> (Server, PathBuf) {
    let store = scratch(tag);
    let srv = Server::start("127.0.0.1:0", &store, opts(workers)).expect("server starts");
    (srv, store)
}

/// One raw request/response exchange over an open socket.
fn roundtrip(stream: &mut TcpStream, request: &str) -> Value {
    stream
        .write_all(format!("{request}\n").as_bytes())
        .expect("request written");
    read_line(&mut BufReader::new(stream.try_clone().expect("clone")))
}

fn read_line(reader: &mut BufReader<TcpStream>) -> Value {
    let mut line = String::new();
    reader.read_line(&mut line).expect("response line");
    assert!(
        line.ends_with('\n'),
        "responses are newline-framed: {line:?}"
    );
    parse_value(line.trim_end()).expect("responses are valid JSON")
}

fn kind(v: &Value) -> &str {
    v.get("type")
        .and_then(Value::as_str)
        .expect("typed response")
}

fn shut_down(srv: Server) {
    Client::connect(srv.addr())
        .expect("connect for shutdown")
        .shutdown()
        .expect("clean shutdown");
    srv.join();
}

#[test]
fn ping_status_and_fetch_speak_the_documented_shapes() {
    let (srv, store) = server("shapes", 1);
    let mut stream = TcpStream::connect(srv.addr()).expect("connect");

    let pong = roundtrip(&mut stream, r#"{"verb":"ping"}"#);
    assert_eq!(kind(&pong), "pong");
    assert_eq!(pong.get("scale").and_then(Value::as_str), Some("test"));
    assert_eq!(pong.get("workers").and_then(Value::as_u64), Some(1));
    assert!(pong.get("code_version").and_then(Value::as_str).is_some());

    let status = roundtrip(&mut stream, r#"{"verb":"status"}"#);
    assert_eq!(kind(&status), "status");
    for counter in [
        "queue",
        "inflight",
        "cached_hits",
        "simulated",
        "joined",
        "failed",
    ] {
        assert_eq!(
            status.get(counter).and_then(Value::as_u64),
            Some(0),
            "fresh server has zero {counter}"
        );
    }

    // Nothing has been simulated: a fetch is a miss, and — being
    // cache-only — it must leave the store untouched.
    let miss = roundtrip(
        &mut stream,
        r#"{"verb":"fetch","cell":{"workload":"sieve"}}"#,
    );
    assert_eq!(kind(&miss), "miss");
    assert!(miss.get("id").and_then(Value::as_str).is_some());
    assert_eq!(
        fs::read_dir(store.join("cells"))
            .expect("cells dir")
            .count(),
        0,
        "fetch never simulates"
    );
    shut_down(srv);
    let _ = fs::remove_dir_all(&store);
}

#[test]
fn submit_simulates_then_fetch_and_resubmit_hit_the_cache() {
    let (srv, store) = server("happy", 2);
    let mut stream = TcpStream::connect(srv.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    let submit = r#"{"verb":"submit","cells":[{"workload":"sieve","threads":2}]}"#;
    stream
        .write_all(format!("{submit}\n").as_bytes())
        .expect("submit written");
    let accepted = read_line(&mut reader);
    assert_eq!(kind(&accepted), "accepted");
    assert_eq!(accepted.get("total").and_then(Value::as_u64), Some(1));
    assert_eq!(accepted.get("scheduled").and_then(Value::as_u64), Some(1));
    let cell = read_line(&mut reader);
    assert_eq!(kind(&cell), "cell");
    assert_eq!(cell.get("status").and_then(Value::as_str), Some("done"));
    assert_eq!(cell.get("workload").and_then(Value::as_str), Some("Sieve"));
    assert!(cell.get("ipc").and_then(Value::as_f64).expect("ipc") > 0.0);
    let done = read_line(&mut reader);
    assert_eq!(kind(&done), "done");
    assert_eq!(done.get("failed").and_then(Value::as_u64), Some(0));

    // Now in cache: fetch hits, resubmit is answered without scheduling.
    let hit = roundtrip(
        &mut stream,
        r#"{"verb":"fetch","cell":{"workload":"sieve","threads":2}}"#,
    );
    assert_eq!(kind(&hit), "cell");
    assert_eq!(hit.get("id"), cell.get("id"));
    stream
        .write_all(format!("{submit}\n").as_bytes())
        .expect("resubmit written");
    let again = read_line(&mut reader);
    assert_eq!(again.get("cached").and_then(Value::as_u64), Some(1));
    assert_eq!(again.get("scheduled").and_then(Value::as_u64), Some(0));
    assert_eq!(kind(&read_line(&mut reader)), "cell");
    assert_eq!(kind(&read_line(&mut reader)), "done");

    let status = roundtrip(&mut stream, r#"{"verb":"status"}"#);
    assert_eq!(status.get("simulated").and_then(Value::as_u64), Some(1));
    shut_down(srv);
    let _ = fs::remove_dir_all(&store);
}

#[test]
fn grid_submission_covers_every_cell_and_progress_streams() {
    let (srv, store) = server("grid", 4);
    let mut client = Client::connect(srv.addr()).expect("connect");
    let mut ticks = 0u64;
    let outcome = client
        .submit(&[], Some("smoke"), true, false, &mut |_| ticks += 1)
        .expect("grid submit");
    let want = Grid::smoke().cells().len();
    assert_eq!(outcome.cells.len(), want, "every grid cell answered");
    assert_eq!(outcome.scheduled, want as u64);
    assert!(outcome.failed.is_empty());
    assert!(ticks > 0, "progress events streamed during simulation");
    assert!(
        outcome.cells.windows(2).all(|w| w[0].1.id < w[1].1.id),
        "cells arrive sorted by id"
    );

    // The whole grid again: pure cache, no new simulations, no ticks.
    let mut silent = 0u64;
    let again = client
        .submit(&[], Some("smoke"), true, false, &mut |_| silent += 1)
        .expect("cached grid submit");
    assert_eq!(again.cached, want as u64);
    assert_eq!(again.scheduled, 0);
    assert_eq!(silent, 0, "cached cells produce no progress");
    assert_eq!(
        outcome.results_json(),
        again.results_json(),
        "cache round-trip preserves every byte"
    );
    shut_down(srv);
    let _ = fs::remove_dir_all(&store);
}

#[test]
fn served_results_are_byte_identical_to_a_batch_sweep() {
    // Reference: the batch path writing results.json directly.
    let batch_out = scratch("batch-ref");
    run_sweep(&Grid::smoke(), &batch_out, &opts(2)).expect("batch sweep");
    let reference = fs::read_to_string(batch_out.join("results.json")).expect("reference bytes");

    // Candidate: the same grid served over the socket into a fresh store.
    let (srv, store) = server("byte-ident", 4);
    let mut client = Client::connect(srv.addr()).expect("connect");
    let outcome = client
        .submit(&[], Some("smoke"), false, false, &mut |_| {})
        .expect("served submit");
    assert_eq!(
        outcome.results_json(),
        reference,
        "served cells must reconstruct the batch results.json byte-for-byte"
    );
    shut_down(srv);
    let _ = fs::remove_dir_all(&store);
    let _ = fs::remove_dir_all(&batch_out);
}

#[test]
fn hetero_mixes_served_with_a_corpus_match_the_batch_sweep() {
    let corpus = Arc::new(
        Corpus::load(concat!(env!("CARGO_MANIFEST_DIR"), "/../../corpus"))
            .expect("repository corpus loads"),
    );
    let with_corpus = |workers| SweepOptions {
        corpus: Some(Arc::clone(&corpus)),
        ..opts(workers)
    };

    // Reference: the hetero grid through the batch path.
    let batch_out = scratch("hetero-batch");
    run_sweep(&Grid::hetero(), &batch_out, &with_corpus(2)).expect("batch hetero sweep");
    let reference = fs::read_to_string(batch_out.join("results.json")).expect("reference bytes");

    // Candidate: the same grid served over the socket into a fresh store.
    let store = scratch("hetero-served");
    let srv = Server::start("127.0.0.1:0", &store, with_corpus(4)).expect("server starts");
    let mut client = Client::connect(srv.addr()).expect("connect");
    let outcome = client
        .submit(&[], Some("hetero"), false, false, &mut |_| {})
        .expect("served hetero submit");
    assert_eq!(outcome.cells.len(), Grid::hetero().cells().len());
    assert!(outcome.failed.is_empty(), "{:?}", outcome.failed);
    assert_eq!(
        outcome.results_json(),
        reference,
        "served hetero cells must reconstruct the batch results.json byte-for-byte"
    );
    shut_down(srv);
    let _ = fs::remove_dir_all(&store);
    let _ = fs::remove_dir_all(&batch_out);
}

#[test]
fn corpus_names_are_refused_without_a_corpus_not_cached() {
    let (srv, store) = server("no-corpus", 1);
    let mut client = Client::connect(srv.addr()).expect("connect");
    let spec = CellSpec {
        work: smt_experiments::sweep::WorkSpec::corpus("quicksort"),
        threads: 2,
        ..CellSpec::default()
    };
    let outcome = client
        .submit(&[spec], None, false, false, &mut |_| {})
        .expect("submit completes");
    assert!(outcome.cells.is_empty(), "nothing was produced");
    assert_eq!(outcome.failed.len(), 1, "the cell got a typed error");
    assert!(
        outcome.failed[0].1.contains("corpus"),
        "{:?}",
        outcome.failed[0]
    );
    // Refusal happens at admission: no infeasible record hit the store.
    assert_eq!(
        fs::read_dir(store.join("cells"))
            .expect("cells dir")
            .count(),
        0,
        "refused cells never touch the store"
    );
    let mut stream = TcpStream::connect(srv.addr()).expect("connect raw");
    let err = roundtrip(
        &mut stream,
        r#"{"verb":"fetch","cell":{"workload":"quicksort","threads":2}}"#,
    );
    assert_eq!(kind(&err), "error", "fetch is refused too: {err:?}");
    shut_down(srv);
    let _ = fs::remove_dir_all(&store);
}

#[test]
fn concurrent_duplicate_submissions_share_one_execution() {
    let (srv, store) = server("dedup", 1);
    let addr = srv.addr();
    let spec = CellSpec {
        work: WorkloadKind::Matrix.into(),
        threads: 4,
        ..CellSpec::default()
    };
    // Several clients race the same (uncached) cell. The in-flight table
    // must collapse them onto one execution; everyone still gets the
    // record.
    let submitters: Vec<_> = (0..4)
        .map(|_| {
            let spec = spec.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client
                    .submit(&[spec], None, false, false, &mut |_| {})
                    .expect("submit")
            })
        })
        .collect();
    let outcomes: Vec<_> = submitters
        .into_iter()
        .map(|t| t.join().expect("join"))
        .collect();
    let first = &outcomes[0];
    assert_eq!(first.cells.len(), 1);
    for o in &outcomes {
        assert_eq!(o.cells.len(), 1, "every duplicate submission is answered");
        assert_eq!(o.results_json(), first.results_json(), "identical records");
    }
    let mut client = Client::connect(addr).expect("connect");
    let status = client.status().expect("status");
    assert_eq!(
        status.get("simulated").and_then(Value::as_u64),
        Some(1),
        "the duplicates collapsed onto exactly one simulation"
    );
    shut_down(srv);
    let _ = fs::remove_dir_all(&store);
}

#[test]
fn cpi_telemetry_rides_along_on_fresh_cells_only() {
    let (srv, store) = server("cpi", 1);
    let mut client = Client::connect(srv.addr()).expect("connect");
    let spec = CellSpec {
        work: WorkloadKind::Sieve.into(),
        threads: 2,
        ..CellSpec::default()
    };

    // Raw exchange so the cpi object's shape is asserted on the wire.
    let mut stream = TcpStream::connect(srv.addr()).expect("connect raw");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    stream
        .write_all(
            b"{\"verb\":\"submit\",\"cells\":[{\"workload\":\"sieve\",\"threads\":2}],\"cpi\":true}\n",
        )
        .expect("submit written");
    assert_eq!(kind(&read_line(&mut reader)), "accepted");
    let cell = read_line(&mut reader);
    let cpi = cell.get("cpi").expect("fresh cell carries cpi telemetry");
    let slots = cpi.get("slots").expect("slot breakdown");
    assert!(
        slots
            .get("committed")
            .and_then(Value::as_u64)
            .expect("committed slots")
            > 0,
        "the breakdown accounts committed slots"
    );
    assert_eq!(kind(&read_line(&mut reader)), "done");

    // The cached answer must not fabricate telemetry (no simulation ran).
    let outcome = client
        .submit(&[spec], None, false, true, &mut |_| {})
        .expect("cached cpi submit");
    assert_eq!(outcome.cached, 1);
    shut_down(srv);
    let _ = fs::remove_dir_all(&store);
}

#[test]
fn search_verb_answers_one_frontier_and_reruns_agree_on_the_digest() {
    let (srv, store) = server("search", 2);
    let mut stream = TcpStream::connect(srv.addr()).expect("connect");
    let request = r#"{"verb":"search","workload":"sieve","threads":2,"seed":7,"warmup":3000}"#;

    let first = roundtrip(&mut stream, request);
    assert_eq!(kind(&first), "frontier", "{first:?}");
    assert!(
        first.get("evaluations").and_then(Value::as_u64).unwrap() > 0,
        "the smoke space was actually explored"
    );
    let frontier = first
        .get("frontier")
        .and_then(Value::as_array)
        .expect("frontier array");
    assert!(!frontier.is_empty(), "a feasible space has a frontier");
    for point in frontier {
        assert!(point.get("ipc").and_then(Value::as_f64).expect("ipc") > 0.0);
        assert!(point.get("cost").and_then(Value::as_f64).expect("cost") > 0.0);
        assert_eq!(
            point.get("workload").and_then(Value::as_str),
            Some("Sieve"),
            "the whole frontier runs the searched workload"
        );
    }
    let costs: Vec<f64> = frontier
        .iter()
        .map(|p| p.get("cost").and_then(Value::as_f64).unwrap())
        .collect();
    assert!(
        costs.windows(2).all(|w| w[0] <= w[1]),
        "frontier arrives in ascending-cost order: {costs:?}"
    );
    let digest = first
        .get("trajectory_hash")
        .and_then(Value::as_str)
        .expect("digest string")
        .to_string();

    // Same request again: the warm store replays every cell from cache,
    // and the trajectory digest — hence the artifact bytes — must agree.
    let again = roundtrip(&mut stream, request);
    assert_eq!(kind(&again), "frontier");
    assert_eq!(
        again.get("trajectory_hash").and_then(Value::as_str),
        Some(digest.as_str()),
        "re-served searches are byte-reproducible"
    );
    assert_eq!(first.to_line(), again.to_line(), "whole response agrees");

    // A malformed space is refused with a typed error, not a hang.
    let err = roundtrip(
        &mut stream,
        r#"{"verb":"search","workload":"sieve","space":"bogus"}"#,
    );
    assert_eq!(kind(&err), "error");
    shut_down(srv);
    let _ = fs::remove_dir_all(&store);
}

/// The acceptance gate: a fully cached 990-cell paper grid answers over
/// the socket in under a second. Debug builds parse/stream an order of
/// magnitude slower, so the wall-clock assertion is release-only (CI's
/// release matrix runs it).
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "timing assertion is calibrated for release builds"
)]
fn fully_cached_paper_grid_serves_in_under_a_second() {
    let grid = Grid::paper();
    let store = scratch("paper-hot");
    let populate = SweepOptions {
        scale: Scale::Test,
        ..SweepOptions::default()
    };
    run_sweep(&grid, &store, &populate).expect("pre-populate store");
    let srv = Server::start("127.0.0.1:0", &store, opts(4)).expect("server starts");
    let mut client = Client::connect(srv.addr()).expect("connect");

    let begin = Instant::now();
    let outcome = client
        .submit(&[], Some("paper"), false, false, &mut |_| {})
        .expect("cached paper grid");
    let elapsed = begin.elapsed();
    assert_eq!(outcome.cells.len(), grid.cells().len());
    assert_eq!(outcome.cached, grid.cells().len() as u64, "fully cached");
    assert_eq!(outcome.scheduled, 0);
    assert!(
        elapsed < Duration::from_secs(1),
        "cached {}-cell grid took {elapsed:?}",
        grid.cells().len()
    );
    shut_down(srv);
    let _ = fs::remove_dir_all(&store);
}
