//! Lockstep co-simulation oracle: replays the cycle simulator's
//! architectural commit stream on the functional reference interpreter and
//! diffs every retirement.
//!
//! The cycle machine in `smt-core` and the interpreter in `smt-isa` share
//! one semantics module, so they can only disagree about *which*
//! instructions retire and *what* they observe — exactly the properties
//! that squash recovery, store-to-load forwarding, renaming, and fault
//! precision must preserve. The oracle attaches to a run as a
//! [`CommitSink`]: at every architecturally retired instruction it steps
//! the interpreter's matching thread once and compares
//!
//! * the **program counter** (control-flow divergence: a wrong-path commit
//!   or a missed squash shows up here first),
//! * the **destination register value** (bad forwarding, lost writeback,
//!   renaming mix-ups),
//! * the **store address and data** (disambiguation bugs),
//! * **fault identity** (kind, address, and pc of a memory fault raised at
//!   commit or at a non-speculative issue).
//!
//! After a clean run the final register file, memory image, and per-thread
//! retirement counts are cross-checked too.
//!
//! What is intentionally **not** compared: anything about *timing* (cycle
//! counts, issue order, commit interleaving across threads — the
//! interpreter has no clock), and the satisfaction timing of `WAIT`. The
//! machine may observe a `POST` increment at writeback before the `POST`
//! retires, so a satisfied `WAIT` can legally reach commit before the
//! increment appears in the replayed stream; the oracle accepts the
//! machine's observation and force-retires the interpreter's `WAIT`
//! (see [`smt_isa::interp::Interp::retire_wait_satisfied`]). A `WAIT`
//! falsely reported satisfied still surfaces downstream, as every value
//! that the premature continuation computes is diffed.
//!
//! The first mismatch is frozen into a [`Divergence`] that reports the
//! retirement index, cycle, scheduling-unit block id, thread, pc, and the
//! surrounding disassembly.

use std::fmt;

use smt_core::{CommitSink, Retirement, SimConfig, SimError, SimStats, Simulator, Snapshot};
use smt_isa::interp::{Interp, InterpError, Progress};
use smt_isa::semantics::effective_addr;
use smt_isa::{Opcode, Program, Reg, WORD_BYTES};
use smt_mem::MemError;

/// How a retirement disagreed with the reference interpreter.
#[derive(Clone, Debug, PartialEq)]
pub enum DivergenceKind {
    /// The stream retires a pc the reference thread is not at.
    Pc {
        /// The pc the reference thread would execute next.
        reference: usize,
    },
    /// A retirement arrived for a thread the reference already halted.
    AfterHalt,
    /// Destination register committed a different value.
    Dest {
        /// Destination register.
        reg: Reg,
        /// Value the simulator committed.
        sim: u64,
        /// Value the reference computed.
        reference: u64,
    },
    /// Store effective address mismatch.
    StoreAddr {
        /// Address the simulator's store buffered.
        sim: u64,
        /// Address the reference computed.
        reference: u64,
    },
    /// Store data mismatch.
    StoreData {
        /// Data the simulator's store buffered.
        sim: u64,
        /// Data the reference computed.
        reference: u64,
    },
    /// The reference blocked or faulted where the simulator retired.
    Reference(String),
    /// The simulator faulted; the reference executed on cleanly.
    MissingFault {
        /// The fault the simulator raised.
        fault: MemError,
    },
    /// Both faulted, but on different kinds, addresses, or pcs.
    FaultMismatch {
        /// The simulator's fault.
        sim: MemError,
        /// The reference's fault.
        reference: InterpError,
    },
    /// Final architectural state differs after a clean run.
    FinalState(String),
    /// The run itself failed (watchdog, invalid configuration).
    Harness(String),
}

/// The first observed disagreement between the machine and the reference.
#[derive(Clone, Debug, PartialEq)]
pub struct Divergence {
    /// Index of the offending retirement in the commit stream (0-based).
    pub seqno: u64,
    /// Cycle the offending block committed (0 when not tied to an event).
    pub cycle: u64,
    /// Scheduling-unit block id (0 when not tied to an event).
    pub block: u64,
    /// Offending thread.
    pub tid: usize,
    /// Program counter of the offending retirement.
    pub pc: usize,
    /// Disassembly of the offending instruction.
    pub disasm: String,
    /// What disagreed.
    pub kind: DivergenceKind,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "divergence at retirement #{} (cycle {}, SU block {}, thread {}, pc {})",
            self.seqno, self.cycle, self.block, self.tid, self.pc
        )?;
        writeln!(f, "  insn: {}", self.disasm)?;
        match &self.kind {
            DivergenceKind::Pc { reference } => {
                write!(f, "  pc mismatch: reference thread is at pc {reference}")
            }
            DivergenceKind::AfterHalt => {
                write!(f, "  retirement after the reference thread halted")
            }
            DivergenceKind::Dest {
                reg,
                sim,
                reference,
            } => write!(f, "  dest {reg}: sim {sim:#x} != reference {reference:#x}"),
            DivergenceKind::StoreAddr { sim, reference } => write!(
                f,
                "  store address: sim {sim:#x} != reference {reference:#x}"
            ),
            DivergenceKind::StoreData { sim, reference } => {
                write!(f, "  store data: sim {sim:#x} != reference {reference:#x}")
            }
            DivergenceKind::Reference(msg) => write!(f, "  reference: {msg}"),
            DivergenceKind::MissingFault { fault } => write!(
                f,
                "  sim faulted ({fault}) but the reference executed on cleanly"
            ),
            DivergenceKind::FaultMismatch { sim, reference } => {
                write!(
                    f,
                    "  fault mismatch: sim `{sim}` != reference `{reference}`"
                )
            }
            DivergenceKind::FinalState(msg) => write!(f, "  final state: {msg}"),
            DivergenceKind::Harness(msg) => write!(f, "  harness: {msg}"),
        }
    }
}

/// Summary of a verified run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Report {
    /// Cycles the simulator took (up to the fault, if any).
    pub cycles: u64,
    /// Instructions architecturally retired.
    pub instructions: u64,
    /// `(tid, pc)` of an agreed memory fault that ended the run, if any.
    pub fault: Option<(usize, usize)>,
}

/// The lockstep oracle. Attach to a run with
/// [`Simulator::run_observed`], or use [`verify`] for the whole
/// run-and-diff workflow.
#[derive(Debug)]
pub struct Oracle<'p> {
    interp: Interp<'p>,
    program: &'p Program,
    /// How many interpreter steps to search for an expected fault. The
    /// faulting instruction trails the last emitted retirement by at most
    /// the scheduling unit's capacity (its block may commit behind done
    /// older entries that haven't committed yet).
    fault_bound: usize,
    seqno: u64,
    divergence: Option<Box<Divergence>>,
    confirmed_fault: Option<(usize, usize)>,
}

impl<'p> Oracle<'p> {
    /// Creates an oracle for a `threads`-thread run of `program`.
    /// `fault_bound` should be at least the scheduling-unit depth (use
    /// `config.su_depth`).
    #[must_use]
    pub fn new(program: &'p Program, threads: usize, fault_bound: usize) -> Self {
        Oracle {
            interp: Interp::new(program, threads),
            program,
            fault_bound: fault_bound.max(4),
            seqno: 0,
            divergence: None,
            confirmed_fault: None,
        }
    }

    /// The first divergence observed, if any.
    #[must_use]
    pub fn divergence(&self) -> Option<&Divergence> {
        self.divergence.as_deref()
    }

    /// Consumes the oracle, yielding the first divergence.
    #[must_use]
    pub fn into_divergence(self) -> Option<Box<Divergence>> {
        self.divergence
    }

    /// The reference interpreter (for end-of-run state comparison).
    #[must_use]
    pub fn interp(&self) -> &Interp<'p> {
        &self.interp
    }

    fn diverge(&mut self, r: &Retirement, kind: DivergenceKind) {
        if self.divergence.is_some() {
            return;
        }
        self.divergence = Some(Box::new(Divergence {
            seqno: self.seqno,
            cycle: r.cycle,
            block: r.block,
            tid: r.tid,
            pc: r.pc,
            disasm: context_disasm(self.program, r.pc),
            kind,
        }));
    }

    /// Steps the reference thread forward expecting it to raise `fault` at
    /// `pc`. Used for commit-time faults (delivered as a stream event) and
    /// issue-time faults of the non-speculative sync ops (which abort the
    /// run without an event). Records a divergence on disagreement.
    pub fn expect_fault(&mut self, tid: usize, pc: usize, fault: MemError) {
        if self.divergence.is_some() || self.confirmed_fault.is_some() {
            return;
        }
        let template = Retirement {
            cycle: 0,
            block: 0,
            tid,
            pc,
            insn: smt_isa::DecodedInsn::new(smt_isa::Instruction::NOP),
            dest: None,
            mem: None,
            fault: Some(fault),
        };
        // The faulting instruction may trail the last emitted retirement:
        // older same-thread instructions can be done but uncommitted when a
        // non-speculative sync op faults at issue, and a commit fault skips
        // the healthy leading entries of its own block. Walk the reference
        // forward until it faults too.
        for _ in 0..self.fault_bound {
            if self.interp.is_halted(tid) {
                break;
            }
            match self.interp.step_thread(tid) {
                Ok(Progress::Stepped) => {}
                Ok(Progress::Blocked | Progress::Halted) => break,
                Err(reference) => {
                    if faults_match(fault, tid, pc, reference) {
                        self.confirmed_fault = Some((tid, pc));
                    } else {
                        self.diverge(
                            &template,
                            DivergenceKind::FaultMismatch {
                                sim: fault,
                                reference,
                            },
                        );
                    }
                    return;
                }
            }
        }
        self.diverge(&template, DivergenceKind::MissingFault { fault });
    }

    fn check(&mut self, r: &Retirement) {
        if let Some(fault) = r.fault {
            self.expect_fault(r.tid, r.pc, fault);
            return;
        }
        if self.interp.is_halted(r.tid) {
            self.diverge(r, DivergenceKind::AfterHalt);
            return;
        }
        let reference_pc = self.interp.thread_pc(r.tid);
        if reference_pc != r.pc {
            self.diverge(
                r,
                DivergenceKind::Pc {
                    reference: reference_pc,
                },
            );
            return;
        }
        // Stores: derive the reference address/data from the *pre-step*
        // register state, then compare against what the machine released to
        // its store buffer.
        if r.op() == Opcode::Sd {
            let insn = self
                .program
                .fetch(r.pc)
                .expect("retired pc is inside the text segment");
            let base = self.interp.reg(r.tid, insn.rs1);
            let reference_addr = effective_addr(base, insn.imm);
            let reference_data = self.interp.reg(r.tid, insn.rs2);
            let (sim_addr, sim_data) = r.mem.expect("store retirement carries its access");
            if sim_addr != reference_addr {
                self.diverge(
                    r,
                    DivergenceKind::StoreAddr {
                        sim: sim_addr,
                        reference: reference_addr,
                    },
                );
                return;
            }
            if sim_data != reference_data {
                self.diverge(
                    r,
                    DivergenceKind::StoreData {
                        sim: sim_data,
                        reference: reference_data,
                    },
                );
                return;
            }
        }
        match self.interp.step_thread(r.tid) {
            Ok(Progress::Stepped) => {}
            Ok(Progress::Halted) => {
                if r.op() != Opcode::Halt {
                    self.diverge(
                        r,
                        DivergenceKind::Reference("halted on a non-halt retirement".into()),
                    );
                    return;
                }
            }
            Ok(Progress::Blocked) => {
                if r.op() == Opcode::Wait {
                    // The machine observed the flag satisfied (a POST that
                    // has executed but not yet retired) — legal; accept.
                    self.interp.retire_wait_satisfied(r.tid);
                } else {
                    self.diverge(
                        r,
                        DivergenceKind::Reference("blocked on a non-wait retirement".into()),
                    );
                    return;
                }
            }
            Err(e) => {
                self.diverge(
                    r,
                    DivergenceKind::Reference(format!("faulted where the sim retired: {e}")),
                );
                return;
            }
        }
        if let Some((reg, sim_value)) = r.dest {
            let reference = self.interp.reg(r.tid, reg);
            if reference != sim_value {
                self.diverge(
                    r,
                    DivergenceKind::Dest {
                        reg,
                        sim: sim_value,
                        reference,
                    },
                );
            }
        }
    }
}

impl CommitSink for Oracle<'_> {
    fn retired(&mut self, r: &Retirement) {
        if self.divergence.is_none() {
            self.check(r);
        }
        self.seqno += 1;
    }
}

fn faults_match(sim: MemError, tid: usize, pc: usize, reference: InterpError) -> bool {
    match (sim, reference) {
        (
            MemError::OutOfBounds { addr, .. },
            InterpError::OutOfBounds {
                addr: ra,
                tid: rt,
                pc: rp,
            },
        )
        | (
            MemError::Unaligned { addr },
            InterpError::Unaligned {
                addr: ra,
                tid: rt,
                pc: rp,
            },
        ) => addr == ra && tid == rt && pc == rp,
        _ => false,
    }
}

/// Disassembly of `pc` with two instructions of context on each side.
fn context_disasm(program: &Program, pc: usize) -> String {
    use fmt::Write as _;
    let mut out = String::new();
    let lo = pc.saturating_sub(2);
    for p in lo..=pc + 2 {
        let Some(insn) = program.fetch(p) else {
            continue;
        };
        let marker = if p == pc { ">" } else { " " };
        let _ = write!(out, "\n    {marker} {p:4}: {insn}");
    }
    out
}

/// Runs `program` under `config` with the oracle attached and returns the
/// run summary, or the first divergence.
///
/// A memory fault is *not* a divergence when the reference faults
/// identically (same kind, address, thread, and pc) — the report then
/// carries the fault location. Final register-file/memory comparison is
/// skipped on fault paths (the machine stops mid-program by design).
///
/// # Errors
///
/// The first [`Divergence`], including harness-level failures (watchdog
/// timeout, invalid configuration) as [`DivergenceKind::Harness`].
pub fn verify(program: &Program, config: SimConfig) -> Result<Report, Box<Divergence>> {
    let threads = config.threads;
    let fault_bound = config.su_depth;
    let mut sim =
        Simulator::try_new(config, program).map_err(|e| harness_divergence(e.to_string()))?;
    let mut oracle = Oracle::new(program, threads, fault_bound);
    let outcome = sim.run_observed(&mut oracle);
    conclude(&sim, oracle, outcome)
}

/// Like [`verify`], but additionally exercises checkpoint/restore: every
/// `every` cycles the run is interrupted, the machine is serialized to
/// the snapshot wire format, decoded back, and **replaced** by the
/// restored copy, which then continues under the same oracle. A clean
/// report therefore certifies not only that the commit stream matches
/// the reference, but that mid-run snapshots are transparent — the
/// stream across every splice point is indistinguishable from an
/// uninterrupted run's.
///
/// # Errors
///
/// The first [`Divergence`]; snapshot encode/decode/restore failures
/// surface as [`DivergenceKind::Harness`].
///
/// # Panics
///
/// Panics if `every` is zero.
pub fn verify_with_checkpoints(
    program: &Program,
    config: SimConfig,
    every: u64,
) -> Result<Report, Box<Divergence>> {
    assert!(every > 0, "checkpoint interval must be positive");
    let threads = config.threads;
    let fault_bound = config.su_depth;
    let mut sim = Simulator::try_new(config.clone(), program)
        .map_err(|e| harness_divergence(e.to_string()))?;
    let mut oracle = Oracle::new(program, threads, fault_bound);
    let outcome = loop {
        let mut step_error = None;
        for _ in 0..every {
            if sim.finished() {
                break;
            }
            if sim.cycle() >= sim.config().max_cycles {
                step_error = Some(SimError::Watchdog {
                    cycles: sim.config().max_cycles,
                });
                break;
            }
            if let Err(e) = sim.step_observed(&mut oracle) {
                step_error = Some(e);
                break;
            }
        }
        if let Some(e) = step_error {
            break Err(e);
        }
        if sim.finished() {
            // No cycles left to run: this only finalizes the statistics,
            // exactly as an uninterrupted `run_observed` would.
            break sim.run_observed(&mut oracle);
        }
        let bytes = sim.checkpoint().to_bytes();
        let snap = Snapshot::from_bytes(&bytes)
            .map_err(|e| harness_divergence(format!("snapshot decode: {e}")))?;
        sim = Simulator::restore(config.clone(), program, &snap)
            .map_err(|e| harness_divergence(format!("snapshot restore: {e}")))?;
    };
    conclude(&sim, oracle, outcome)
}

/// Lockstep oracle for a heterogeneous program mix: one reference
/// interpreter per hardware thread, each running its own program as a
/// 1-thread machine — exactly the mix's architectural contract. Store
/// addresses are localized (the machine's flat backing memory is global;
/// each reference speaks thread-local addresses) before comparison;
/// memory faults already carry thread-local addresses by construction.
#[derive(Debug)]
pub struct MixOracle<'p> {
    /// One per-thread oracle, each over a 1-thread interpreter. Thread
    /// `tid`'s retirements are localized and replayed on `oracles[tid]`.
    oracles: Vec<Oracle<'p>>,
    /// Per-thread byte offset of the thread's data segment in the flat
    /// backing memory ([`Simulator::thread_segment`]).
    bases: Vec<u64>,
    seqno: u64,
    divergence: Option<Box<Divergence>>,
    confirmed_fault: Option<(usize, usize)>,
}

impl<'p> MixOracle<'p> {
    /// Creates a mix oracle: `programs[tid]` runs on thread `tid`, whose
    /// data segment starts `bases[tid]` bytes into the flat memory.
    ///
    /// # Panics
    ///
    /// Panics if `programs` and `bases` disagree in length.
    #[must_use]
    pub fn new(programs: &[&'p Program], bases: &[u64], fault_bound: usize) -> Self {
        assert_eq!(
            programs.len(),
            bases.len(),
            "one memory base per mix program"
        );
        MixOracle {
            oracles: programs
                .iter()
                .map(|p| Oracle::new(p, 1, fault_bound))
                .collect(),
            bases: bases.to_vec(),
            seqno: 0,
            divergence: None,
            confirmed_fault: None,
        }
    }

    /// The first divergence observed, if any.
    #[must_use]
    pub fn divergence(&self) -> Option<&Divergence> {
        self.divergence.as_deref()
    }

    /// Consumes the oracle, yielding the first divergence.
    #[must_use]
    pub fn into_divergence(self) -> Option<Box<Divergence>> {
        self.divergence
    }

    /// Thread `tid`'s reference interpreter.
    #[must_use]
    pub fn interp(&self, tid: usize) -> &Interp<'p> {
        self.oracles[tid].interp()
    }

    /// Expects thread `tid`'s reference to fault like the machine did
    /// (see [`Oracle::expect_fault`]). The fault's address is
    /// thread-local on both sides.
    pub fn expect_fault(&mut self, tid: usize, pc: usize, fault: MemError) {
        if self.divergence.is_some() || self.confirmed_fault.is_some() {
            return;
        }
        self.oracles[tid].expect_fault(0, pc, fault);
        self.reap(tid);
    }

    /// Lifts thread `tid`'s inner oracle verdicts (divergence, confirmed
    /// fault) into the mix-level state, restoring the global thread id
    /// and stream position.
    fn reap(&mut self, tid: usize) {
        if let Some((_, pc)) = self.oracles[tid].confirmed_fault.take() {
            self.confirmed_fault = Some((tid, pc));
        }
        if self.divergence.is_some() {
            return;
        }
        if let Some(mut d) = self.oracles[tid].divergence.take() {
            d.tid = tid;
            d.seqno = self.seqno;
            self.divergence = Some(d);
        }
    }
}

impl CommitSink for MixOracle<'_> {
    fn retired(&mut self, r: &Retirement) {
        if self.divergence.is_none() {
            let mut local = *r;
            local.tid = 0;
            if let Some((addr, data)) = local.mem {
                // Wrapping subtraction keeps a cross-segment store (a
                // global address below this thread's base) unequal to
                // every thread-local address instead of panicking.
                local.mem = Some((addr.wrapping_sub(self.bases[r.tid]), data));
            }
            self.oracles[r.tid].check(&local);
            self.reap(r.tid);
        }
        self.seqno += 1;
    }
}

/// Runs a heterogeneous mix (`programs[tid]` on thread `tid`) under
/// `config` with a [`MixOracle`] attached — the mix counterpart of
/// [`verify`]. Each thread's commit stream, final register window,
/// memory segment, and retirement count are checked against a solo
/// 1-thread reference run of its own program.
///
/// # Errors
///
/// The first [`Divergence`], as for [`verify`].
pub fn verify_mix(programs: &[&Program], config: SimConfig) -> Result<Report, Box<Divergence>> {
    let fault_bound = config.su_depth;
    let mut sim =
        Simulator::try_new_mix(config, programs).map_err(|e| harness_divergence(e.to_string()))?;
    let bases: Vec<u64> = (0..programs.len())
        .map(|t| sim.thread_segment(t).0)
        .collect();
    let mut oracle = MixOracle::new(programs, &bases, fault_bound);
    let outcome = sim.run_observed(&mut oracle);
    conclude_mix(&sim, oracle, outcome)
}

/// Like [`verify_mix`], but splices a serialize/decode/restore cycle
/// into the run every `every` cycles (see [`verify_with_checkpoints`]):
/// a clean report certifies mix snapshots are transparent.
///
/// # Errors
///
/// The first [`Divergence`]; snapshot failures surface as
/// [`DivergenceKind::Harness`].
///
/// # Panics
///
/// Panics if `every` is zero.
pub fn verify_mix_with_checkpoints(
    programs: &[&Program],
    config: SimConfig,
    every: u64,
) -> Result<Report, Box<Divergence>> {
    assert!(every > 0, "checkpoint interval must be positive");
    let fault_bound = config.su_depth;
    let mut sim = Simulator::try_new_mix(config.clone(), programs)
        .map_err(|e| harness_divergence(e.to_string()))?;
    let bases: Vec<u64> = (0..programs.len())
        .map(|t| sim.thread_segment(t).0)
        .collect();
    let mut oracle = MixOracle::new(programs, &bases, fault_bound);
    let outcome = loop {
        let mut step_error = None;
        for _ in 0..every {
            if sim.finished() {
                break;
            }
            if sim.cycle() >= sim.config().max_cycles {
                step_error = Some(SimError::Watchdog {
                    cycles: sim.config().max_cycles,
                });
                break;
            }
            if let Err(e) = sim.step_observed(&mut oracle) {
                step_error = Some(e);
                break;
            }
        }
        if let Some(e) = step_error {
            break Err(e);
        }
        if sim.finished() {
            break sim.run_observed(&mut oracle);
        }
        let bytes = sim.checkpoint().to_bytes();
        let snap = Snapshot::from_bytes(&bytes)
            .map_err(|e| harness_divergence(format!("snapshot decode: {e}")))?;
        sim = Simulator::restore_mix(config.clone(), programs, &snap)
            .map_err(|e| harness_divergence(format!("snapshot restore: {e}")))?;
    };
    conclude_mix(&sim, oracle, outcome)
}

/// Mix counterpart of [`conclude`]: the final-state diff runs per
/// thread, against each thread's own reference — its register window,
/// its memory segment, its retirement count.
fn conclude_mix(
    sim: &Simulator<'_>,
    mut oracle: MixOracle<'_>,
    outcome: Result<SimStats, SimError>,
) -> Result<Report, Box<Divergence>> {
    match outcome {
        Ok(stats) => {
            if let Some(d) = oracle.divergence.take() {
                return Err(d);
            }
            let threads = oracle.oracles.len();
            let window = sim.reg_file().len() / threads;
            let mut final_state_error = None;
            for (tid, o) in oracle.oracles.iter().enumerate() {
                let interp = o.interp();
                let (base, span) = sim.thread_segment(tid);
                let lo = (base / WORD_BYTES) as usize;
                let hi = lo + (span / WORD_BYTES) as usize;
                if !interp.finished() {
                    final_state_error = Some(format!("thread {tid}: its reference has not halted"));
                } else if stats.committed[tid] != interp.retired_counts().iter().sum::<u64>() {
                    final_state_error = Some(format!(
                        "thread {tid}: retirement counts differ: sim {}, reference {}",
                        stats.committed[tid],
                        interp.retired_counts().iter().sum::<u64>()
                    ));
                } else if sim.reg_file()[tid * window..(tid + 1) * window]
                    != interp.reg_file()[..window]
                {
                    final_state_error = Some(format!("thread {tid}: register windows differ"));
                } else if sim.memory().words()[lo..hi] != *interp.mem_words() {
                    final_state_error = Some(format!("thread {tid}: memory segments differ"));
                }
                if final_state_error.is_some() {
                    break;
                }
            }
            if let Some(msg) = final_state_error {
                return Err(Box::new(Divergence {
                    seqno: oracle.seqno,
                    cycle: stats.cycles,
                    block: 0,
                    tid: 0,
                    pc: 0,
                    disasm: String::new(),
                    kind: DivergenceKind::FinalState(msg),
                }));
            }
            Ok(Report {
                cycles: stats.cycles,
                instructions: stats.committed_total(),
                fault: None,
            })
        }
        Err(SimError::Mem { err, tid, pc }) => {
            oracle.expect_fault(tid, pc, err);
            if let Some(d) = oracle.divergence.take() {
                return Err(d);
            }
            debug_assert_eq!(oracle.confirmed_fault, Some((tid, pc)));
            Ok(Report {
                cycles: sim.cycle(),
                instructions: sim.stats().committed.iter().sum(),
                fault: Some((tid, pc)),
            })
        }
        Err(e) => {
            if let Some(d) = oracle.divergence.take() {
                return Err(d);
            }
            Err(harness_divergence(e.to_string()))
        }
    }
}

fn harness_divergence(msg: String) -> Box<Divergence> {
    Box::new(Divergence {
        seqno: 0,
        cycle: 0,
        block: 0,
        tid: 0,
        pc: 0,
        disasm: String::new(),
        kind: DivergenceKind::Harness(msg),
    })
}

/// Shared epilogue of [`verify`] and [`verify_with_checkpoints`]: folds
/// the run outcome, any recorded divergence, and the final-state diff
/// into a [`Report`].
fn conclude(
    sim: &Simulator<'_>,
    mut oracle: Oracle<'_>,
    outcome: Result<SimStats, SimError>,
) -> Result<Report, Box<Divergence>> {
    match outcome {
        Ok(stats) => {
            if let Some(d) = oracle.divergence.take() {
                return Err(d);
            }
            let final_state_error = if !oracle.interp.finished() {
                Some("sim finished but reference threads have not halted".to_string())
            } else if stats.committed != oracle.interp.retired_counts() {
                Some(format!(
                    "per-thread retirement counts differ: sim {:?}, reference {:?}",
                    stats.committed,
                    oracle.interp.retired_counts()
                ))
            } else if sim.reg_file() != oracle.interp.reg_file() {
                Some("final register files differ".to_string())
            } else if sim.memory().words() != oracle.interp.mem_words() {
                Some("final memory images differ".to_string())
            } else {
                None
            };
            if let Some(msg) = final_state_error {
                return Err(Box::new(Divergence {
                    seqno: oracle.seqno,
                    cycle: stats.cycles,
                    block: 0,
                    tid: 0,
                    pc: 0,
                    disasm: String::new(),
                    kind: DivergenceKind::FinalState(msg),
                }));
            }
            Ok(Report {
                cycles: stats.cycles,
                instructions: stats.committed_total(),
                fault: None,
            })
        }
        Err(SimError::Mem { err, tid, pc }) => {
            // Commit-time faults arrive as a stream event and are already
            // checked; issue-time faults of the non-speculative sync ops
            // abort without one — check now.
            oracle.expect_fault(tid, pc, err);
            if let Some(d) = oracle.divergence.take() {
                return Err(d);
            }
            debug_assert_eq!(oracle.confirmed_fault, Some((tid, pc)));
            Ok(Report {
                cycles: sim.cycle(),
                instructions: sim.stats().committed.iter().sum(),
                fault: Some((tid, pc)),
            })
        }
        Err(e) => {
            if let Some(d) = oracle.divergence.take() {
                return Err(d);
            }
            Err(harness_divergence(e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_core::FetchPolicy;
    use smt_isa::builder::ProgramBuilder;
    use smt_isa::DecodedInsn;

    fn sum_program() -> Program {
        let mut b = ProgramBuilder::new();
        let out = b.alloc_zeroed(8 * 8);
        let [sum, i, limit, addr] = b.regs();
        b.li(sum, 0);
        b.li(i, 1);
        b.li(limit, 15);
        let top = b.label();
        b.bind(top);
        b.add(sum, sum, i);
        b.addi(i, i, 1);
        b.blt(i, limit, top);
        b.slli(addr, b.tid_reg(), 3);
        b.addi(addr, addr, out as i32);
        b.sd(sum, addr, 0);
        b.halt();
        b.build(8).unwrap()
    }

    #[test]
    fn clean_runs_verify_across_policies_and_threads() {
        let p = sum_program();
        for policy in [
            FetchPolicy::TrueRoundRobin,
            FetchPolicy::MaskedRoundRobin,
            FetchPolicy::ConditionalSwitch,
        ] {
            for threads in [1usize, 2, 4, 8] {
                let config = SimConfig::default()
                    .with_threads(threads)
                    .with_fetch_policy(policy);
                let report =
                    verify(&p, config).unwrap_or_else(|d| panic!("{policy}/{threads}: {d}"));
                assert!(report.fault.is_none());
                assert!(report.instructions > 0);
            }
        }
    }

    #[test]
    fn checkpointed_runs_verify_and_match_uninterrupted_reports() {
        let p = sum_program();
        for threads in [1usize, 2, 4] {
            let config = SimConfig::default().with_threads(threads);
            let plain = verify(&p, config.clone()).unwrap_or_else(|d| panic!("{threads}: {d}"));
            // A small prime interval lands snapshots on awkward cycles.
            let spliced = verify_with_checkpoints(&p, config, 13)
                .unwrap_or_else(|d| panic!("{threads} checkpointed: {d}"));
            assert_eq!(spliced, plain, "{threads}: splices must be transparent");
        }
    }

    #[test]
    fn checkpointed_run_confirms_agreed_faults_too() {
        let mut b = ProgramBuilder::new();
        let r = b.reg();
        b.li(r, 1 << 40);
        b.sd(r, r, 0);
        b.halt();
        let p = b.build(1).unwrap();
        let report = verify_with_checkpoints(&p, SimConfig::default().with_threads(1), 3)
            .expect("faults agree across splices");
        assert!(report.fault.is_some());
    }

    #[test]
    fn agreed_fault_is_not_a_divergence() {
        let mut b = ProgramBuilder::new();
        let r = b.reg();
        b.li(r, 1 << 40);
        b.sd(r, r, 0);
        b.halt();
        let p = b.build(1).unwrap();
        let report = verify(&p, SimConfig::default().with_threads(1)).expect("faults agree");
        let (tid, pc) = report.fault.expect("run ended in a fault");
        assert_eq!(tid, 0);
        assert_eq!(p.fetch(pc).unwrap().op, Opcode::Sd);
    }

    #[test]
    fn synchronized_producer_consumer_verifies() {
        let mut b = ProgramBuilder::new();
        let flag = b.alloc_zeroed(8);
        let slot = b.alloc_zeroed(8);
        let out = b.alloc_zeroed(8 * 8);
        let [fl, sl, v, one, zero, addr] = b.regs();
        b.li(fl, flag as i64);
        b.li(sl, slot as i64);
        b.li(one, 1);
        b.li(zero, 0);
        let consumer = b.label();
        let store = b.label();
        b.bne(b.tid_reg(), zero, consumer);
        b.li(v, 777);
        b.sd(v, sl, 0);
        b.post(fl);
        b.j(store);
        b.bind(consumer);
        b.wait(fl, one);
        b.bind(store);
        b.ld(v, sl, 0);
        b.slli(addr, b.tid_reg(), 3);
        b.addi(addr, addr, out as i32);
        b.sd(v, addr, 0);
        b.halt();
        let p = b.build(4).unwrap();
        for threads in [2usize, 4] {
            verify(&p, SimConfig::default().with_threads(threads))
                .unwrap_or_else(|d| panic!("{threads} threads: {d}"));
        }
    }

    fn blur_like_program() -> Program {
        // Memory-heavy: repeatedly loads neighbours and stores averages.
        let mut b = ProgramBuilder::new();
        let src = b.alloc_zeroed(16 * 8);
        let dst = b.alloc_zeroed(16 * 8);
        let [i, limit, addr, v, w, acc] = b.regs();
        b.li(i, 1);
        b.li(limit, 15);
        let top = b.label();
        b.bind(top);
        b.slli(addr, i, 3);
        b.addi(addr, addr, src as i32);
        b.sd(i, addr, 0);
        b.ld(v, addr, -8);
        b.ld(w, addr, 0);
        b.add(acc, v, w);
        b.addi(addr, addr, (dst as i32) - (src as i32));
        b.sd(acc, addr, 0);
        b.addi(i, i, 1);
        b.blt(i, limit, top);
        b.halt();
        b.build(1).unwrap()
    }

    #[test]
    fn hetero_mixes_verify_across_policies() {
        let a = sum_program();
        let b = blur_like_program();
        for policy in [
            FetchPolicy::TrueRoundRobin,
            FetchPolicy::MaskedRoundRobin,
            FetchPolicy::Icount,
        ] {
            let config = SimConfig::default()
                .with_threads(2)
                .with_fetch_policy(policy);
            let report =
                verify_mix(&[&a, &b], config).unwrap_or_else(|d| panic!("{policy} mix: {d}"));
            assert!(report.fault.is_none());
            assert!(report.instructions > 0);
        }
        // Four threads, two of each program, interleaved.
        let config = SimConfig::default().with_threads(4);
        verify_mix(&[&a, &b, &a, &b], config).unwrap_or_else(|d| panic!("4-thread mix: {d}"));
    }

    #[test]
    fn hetero_checkpointed_runs_match_uninterrupted_reports() {
        let a = sum_program();
        let b = blur_like_program();
        let config = SimConfig::default().with_threads(2);
        let plain = verify_mix(&[&a, &b], config.clone()).unwrap_or_else(|d| panic!("{d}"));
        let spliced = verify_mix_with_checkpoints(&[&a, &b], config, 13)
            .unwrap_or_else(|d| panic!("checkpointed mix: {d}"));
        assert_eq!(spliced, plain, "mix splices must be transparent");
    }

    #[test]
    fn hetero_agreed_fault_is_not_a_divergence() {
        // Thread 1's program faults; thread 0's is healthy. The fault
        // must be confirmed against thread 1's own reference with its
        // thread-local address.
        let healthy = sum_program();
        let mut b = ProgramBuilder::new();
        let r = b.reg();
        b.li(r, 1 << 40);
        b.sd(r, r, 0);
        b.halt();
        let faulty = b.build(1).unwrap();
        let report = verify_mix(&[&healthy, &faulty], SimConfig::default().with_threads(2))
            .expect("fault agrees with thread 1's reference");
        let (tid, pc) = report.fault.expect("run ends in a fault");
        assert_eq!(tid, 1);
        assert_eq!(faulty.fetch(pc).unwrap().op, Opcode::Sd);
    }

    #[test]
    fn mix_store_corruption_is_caught() {
        // Replay a real mix stream with thread 1's store aliased one
        // slot over: the localized compare must trip StoreAddr.
        let a = sum_program();
        let b = blur_like_program();
        let config = SimConfig::default().with_threads(2);
        let mut sim = Simulator::try_new_mix(config.clone(), &[&a, &b]).unwrap();
        struct Capture(Vec<Retirement>);
        impl CommitSink for Capture {
            fn retired(&mut self, r: &Retirement) {
                self.0.push(*r);
            }
        }
        let mut cap = Capture(Vec::new());
        sim.run_observed(&mut cap).unwrap();
        let bases = [sim.thread_segment(0).0, sim.thread_segment(1).0];
        let mut o = MixOracle::new(&[&a, &b], &bases, 8);
        let mut corrupted = false;
        for r in &cap.0 {
            let mut r = *r;
            if !corrupted && r.tid == 1 && r.op() == Opcode::Sd {
                let (addr, data) = r.mem.unwrap();
                r.mem = Some((addr + 8, data));
                corrupted = true;
            }
            o.retired(&r);
        }
        assert!(corrupted, "stream contains a thread-1 store");
        let d = o.divergence().expect("aliased store detected");
        assert_eq!(d.tid, 1, "divergence names the corrupted thread");
        assert!(matches!(d.kind, DivergenceKind::StoreAddr { .. }));
    }

    /// Feeding the oracle a corrupted stream by hand proves each check
    /// trips independently of any simulator bug.
    #[test]
    fn synthetic_stream_corruptions_are_caught() {
        let mut b = ProgramBuilder::new();
        let slot = b.alloc_zeroed(8);
        let [v, base] = b.regs();
        b.li(v, 5); //            pc 0
        b.li(base, slot as i64); // pc 1 (may span several insns — use decoded pcs)
        b.sd(v, base, 0);
        b.halt();
        let p = b.build(1).unwrap();
        // `li v, 5` lowers to `lui v, 0; addi v, v, 5`.
        let event = |pc: usize, value: u64| {
            let insn = DecodedInsn::new(*p.fetch(pc).unwrap());
            Retirement {
                cycle: 1,
                block: 0,
                tid: 0,
                pc,
                insn,
                dest: insn.dest.map(|rd| (rd, value)),
                mem: None,
                fault: None,
            }
        };

        // Wrong pc: the reference is at the entry, stream claims pc 1.
        let mut o = Oracle::new(&p, 1, 8);
        o.retired(&event(1, 5));
        assert!(matches!(
            o.divergence().unwrap().kind,
            DivergenceKind::Pc { .. }
        ));

        // Wrong dest value: the `addi` writes 5, stream claims 6.
        let mut o = Oracle::new(&p, 1, 8);
        o.retired(&event(0, 0)); // lui v, 0 — correct
        assert!(o.divergence().is_none());
        o.retired(&event(1, 6));
        let d = o.divergence().expect("value corruption detected").clone();
        assert_eq!(
            d.kind,
            DivergenceKind::Dest {
                reg: v,
                sim: 6,
                reference: 5,
            }
        );
        assert!(d.to_string().contains("dest"));

        // Missing fault: stream claims a fault the reference won't raise.
        let mut o = Oracle::new(&p, 1, 8);
        let mut e = event(0, 0);
        e.dest = None;
        e.fault = Some(MemError::OutOfBounds {
            addr: 1 << 40,
            size: 64,
        });
        o.retired(&e);
        assert!(matches!(
            o.divergence().unwrap().kind,
            DivergenceKind::MissingFault { .. }
        ));
    }

    #[test]
    fn store_corruption_is_caught_before_the_reference_steps() {
        let mut b = ProgramBuilder::new();
        let slot = b.alloc_zeroed(16);
        let [v, base] = b.regs();
        b.li(v, 9);
        b.li(base, slot as i64);
        b.sd(v, base, 0);
        b.halt();
        let p = b.build(1).unwrap();
        // Drive the reference to the store by replaying the real stream
        // prefix, then corrupt the store's address.
        let mut sim = Simulator::new(SimConfig::default().with_threads(1), &p);
        struct Capture(Vec<Retirement>);
        impl CommitSink for Capture {
            fn retired(&mut self, r: &Retirement) {
                self.0.push(*r);
            }
        }
        let mut cap = Capture(Vec::new());
        sim.run_observed(&mut cap).unwrap();
        let mut o = Oracle::new(&p, 1, 8);
        for r in &cap.0 {
            let mut r = *r;
            if r.op() == Opcode::Sd {
                let (addr, data) = r.mem.unwrap();
                r.mem = Some((addr + 8, data)); // aliased to the wrong slot
            }
            o.retired(&r);
        }
        assert!(matches!(
            o.divergence().expect("address corruption detected").kind,
            DivergenceKind::StoreAddr { .. }
        ));
    }
}
