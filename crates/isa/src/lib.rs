//! SDSP-like RISC instruction set architecture.
//!
//! This crate defines everything *architectural* about the simulated
//! processor of Gulati & Bagherzadeh (HPCA '96): the register file contract,
//! the instruction set, binary encodings, a program-builder DSL standing in
//! for the paper's SDSP C compiler, a text assembler, and a functional
//! (instruction-at-a-time) reference interpreter used as the correctness
//! oracle for the cycle-accurate simulator in `smt-core`.
//!
//! # Architectural summary
//!
//! * 128 physical registers ([`REG_FILE_SIZE`]), statically partitioned into
//!   equal per-thread windows; instructions name *thread-relative* registers.
//! * 64-bit integer registers; floating point uses the same registers with
//!   IEEE-754 binary64 bit patterns (see [`semantics`]).
//! * Byte-addressed memory, 8-byte aligned loads/stores ([`WORD_BYTES`]).
//! * Fixed 32-bit instruction encodings ([`encode`]).
//! * Explicit synchronization primitives `WAIT`/`POST` for the paper's
//!   homogeneous-multitasking parallel model.
//!
//! # Example
//!
//! ```
//! use smt_isa::builder::ProgramBuilder;
//! use smt_isa::interp::Interp;
//!
//! // sum[tid] = tid + nthreads, on every thread
//! let mut b = ProgramBuilder::new();
//! let out = b.alloc_zeroed(4 * 8); // one output slot per thread
//! let (tid, n) = (b.tid_reg(), b.nthreads_reg());
//! let sum = b.reg();
//! let addr = b.reg();
//! b.add(sum, tid, n);
//! b.slli(addr, tid, 3);
//! b.addi(addr, addr, out as i32);
//! b.sd(sum, addr, 0);
//! b.halt();
//! let program = b.build(4)?;
//!
//! let mut interp = Interp::new(&program, 4);
//! interp.run()?;
//! assert_eq!(interp.load_word(out + 8), 1 + 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod asm;
pub mod builder;
pub mod encode;
pub mod insn;
pub mod interp;
pub mod op;
pub mod predecode;
pub mod program;
pub mod reg;
pub mod semantics;

pub use insn::Instruction;
pub use op::{FuClass, Opcode};
pub use predecode::DecodedInsn;
pub use program::Program;
pub use reg::Reg;

/// Number of physical registers in the shared register file.
///
/// The paper statically partitions these equally among the resident threads
/// (Section 3: "all threads are allotted equal numbers of registers").
pub const REG_FILE_SIZE: usize = 128;

/// Size in bytes of a memory word (and of every load/store access).
pub const WORD_BYTES: u64 = 8;

/// Maximum number of simultaneously resident threads the register file can
/// be partitioned for. The paper evaluates 1–6 threads; the partition math
/// extends evenly to 8 (`128 / 8 = 16` registers per window), which the
/// differential fuzzer uses to stress the machine beyond the paper's sweep.
/// Every kernel in `smt-workloads` still fits the 6-thread window of 21.
pub const MAX_THREADS: usize = 8;

/// Per-thread register window size for an `n`-thread partition.
///
/// # Panics
///
/// Panics if `n` is zero or greater than [`MAX_THREADS`].
#[must_use]
pub fn window_size(n: usize) -> usize {
    assert!(
        (1..=MAX_THREADS).contains(&n),
        "thread count {n} out of range 1..={MAX_THREADS}"
    );
    REG_FILE_SIZE / n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_sizes_partition_the_file() {
        assert_eq!(window_size(1), 128);
        assert_eq!(window_size(2), 64);
        assert_eq!(window_size(3), 42);
        assert_eq!(window_size(4), 32);
        assert_eq!(window_size(5), 25);
        assert_eq!(window_size(6), 21);
        assert_eq!(window_size(7), 18);
        assert_eq!(window_size(8), 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn window_size_rejects_zero() {
        let _ = window_size(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn window_size_rejects_too_many() {
        let _ = window_size(9);
    }
}
