//! Thread-relative architectural register names.

use std::fmt;

/// A thread-relative architectural register.
///
/// Instructions name registers inside the executing thread's static window of
/// the 128-entry shared register file; the hardware adds `tid * window_size`
/// to form the physical index. Two conventional registers are seeded by the
/// reset sequence (mirroring the paper's runtime start-up code):
///
/// * [`Reg::TID`] holds the thread's own id (`0..n_threads`),
/// * [`Reg::NTHREADS`] holds the number of resident threads.
///
/// ```
/// use smt_isa::Reg;
/// let r = Reg::new(5);
/// assert_eq!(r.index(), 5);
/// assert_eq!(r.to_string(), "r5");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Reg(u8);

impl Reg {
    /// Register seeded with the executing thread's id at reset.
    pub const TID: Reg = Reg(0);
    /// Register seeded with the thread count at reset.
    pub const NTHREADS: Reg = Reg(1);
    /// First register free for allocation by the program builder.
    pub const FIRST_FREE: Reg = Reg(2);

    /// Creates a register name.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not below [`crate::REG_FILE_SIZE`] (a register
    /// name can never exceed the physical file even in a 1-thread partition).
    #[must_use]
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < crate::REG_FILE_SIZE,
            "register index {index} exceeds file size {}",
            crate::REG_FILE_SIZE
        );
        Reg(index)
    }

    /// The thread-relative index of this register.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw `u8` index, for encoders.
    #[must_use]
    pub fn raw(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<Reg> for usize {
    fn from(r: Reg) -> usize {
        r.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventional_registers() {
        assert_eq!(Reg::TID.index(), 0);
        assert_eq!(Reg::NTHREADS.index(), 1);
        assert_eq!(Reg::FIRST_FREE.index(), 2);
    }

    #[test]
    fn display_is_r_prefixed() {
        assert_eq!(Reg::new(17).to_string(), "r17");
    }

    #[test]
    #[should_panic(expected = "exceeds file size")]
    fn rejects_out_of_file_index() {
        let _ = Reg::new(200);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Reg::new(3) < Reg::new(4));
    }
}
