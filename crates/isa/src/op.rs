//! Opcodes and the functional-unit classes that execute them.

use std::fmt;

/// The class of functional unit an instruction executes on.
///
/// These are exactly the rows of the paper's Table 1 (functional-unit
/// configuration), plus a dedicated synchronization unit for the explicit
/// `WAIT`/`POST` primitives of the homogeneous-multitasking model (the paper
/// treats those as a special instruction class that can trigger a context
/// switch under the Conditional Switch fetch policy).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum FuClass {
    /// Single-cycle integer ALU.
    Alu,
    /// Integer multiplier.
    IntMul,
    /// Iterative integer divider (unpipelined).
    IntDiv,
    /// Load unit (address generation + data-cache access).
    Load,
    /// Store unit (address generation + store-buffer entry).
    Store,
    /// Control-transfer unit (branches, jumps, halt).
    Ctu,
    /// Floating-point adder (also comparisons and conversions).
    FpAdd,
    /// Floating-point multiplier.
    FpMul,
    /// Iterative floating-point divider / square root (unpipelined).
    FpDiv,
    /// Synchronization unit for `WAIT`/`POST`.
    Sync,
}

impl FuClass {
    /// All classes, in Table 1 order followed by the sync unit.
    pub const ALL: [FuClass; 10] = [
        FuClass::Alu,
        FuClass::IntMul,
        FuClass::IntDiv,
        FuClass::Load,
        FuClass::Store,
        FuClass::Ctu,
        FuClass::FpAdd,
        FuClass::FpMul,
        FuClass::FpDiv,
        FuClass::Sync,
    ];

    /// Position of this class in [`FuClass::ALL`] (the declaration order),
    /// usable as a dense array index without a search.
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for FuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FuClass::Alu => "Integer ALU",
            FuClass::IntMul => "Integer Multiply",
            FuClass::IntDiv => "Integer Divide",
            FuClass::Load => "Load Unit",
            FuClass::Store => "Store Unit",
            FuClass::Ctu => "Control Transfer",
            FuClass::FpAdd => "FP Add",
            FuClass::FpMul => "FP Multiply",
            FuClass::FpDiv => "FP Divide",
            FuClass::Sync => "Sync Unit",
        };
        f.write_str(name)
    }
}

/// Instruction operand format, used by the encoder and assembler.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Format {
    /// `op rd, rs1, rs2`
    R3,
    /// `op rd, rs1, imm`
    I2,
    /// `op rd, imm` (e.g. `lui`)
    I1,
    /// `op rd, imm(rs1)` — loads
    Mem,
    /// `op rs2, imm(rs1)` — stores (no destination)
    MemStore,
    /// `op rs1, rs2, target` — conditional branches
    Branch,
    /// `op target` — unconditional jump
    Jump,
    /// `op rs1, rs2` — two sources, no destination (`wait`)
    S2,
    /// `op rs1` — one source, no destination (`post`)
    S1,
    /// `op rd, rs1` — one source, one destination (unary ops)
    U,
    /// `op` — no operands (`nop`, `halt`)
    None,
}

macro_rules! opcodes {
    ($( $variant:ident => ($mnemonic:literal, $class:expr, $format:expr) ),+ $(,)?) => {
        /// Every instruction of the SDSP-like ISA.
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
        #[repr(u8)]
        pub enum Opcode {
            $( $variant ),+
        }

        impl Opcode {
            /// All opcodes, in encoding order.
            pub const ALL: &'static [Opcode] = &[ $( Opcode::$variant ),+ ];

            /// Assembler mnemonic.
            #[must_use]
            pub fn mnemonic(self) -> &'static str {
                match self { $( Opcode::$variant => $mnemonic ),+ }
            }

            /// Functional-unit class this opcode executes on.
            #[must_use]
            pub fn fu_class(self) -> FuClass {
                match self { $( Opcode::$variant => $class ),+ }
            }

            /// Operand format of this opcode.
            #[must_use]
            pub fn format(self) -> Format {
                match self { $( Opcode::$variant => $format ),+ }
            }

            /// Looks an opcode up by its assembler mnemonic.
            #[must_use]
            pub fn from_mnemonic(s: &str) -> Option<Opcode> {
                match s { $( $mnemonic => Some(Opcode::$variant), )+ _ => None }
            }
        }
    };
}

opcodes! {
    // Integer ALU -----------------------------------------------------------
    Add  => ("add",  FuClass::Alu, Format::R3),
    Sub  => ("sub",  FuClass::Alu, Format::R3),
    And  => ("and",  FuClass::Alu, Format::R3),
    Or   => ("or",   FuClass::Alu, Format::R3),
    Xor  => ("xor",  FuClass::Alu, Format::R3),
    Sll  => ("sll",  FuClass::Alu, Format::R3),
    Srl  => ("srl",  FuClass::Alu, Format::R3),
    Sra  => ("sra",  FuClass::Alu, Format::R3),
    Slt  => ("slt",  FuClass::Alu, Format::R3),
    Sltu => ("sltu", FuClass::Alu, Format::R3),
    Addi => ("addi", FuClass::Alu, Format::I2),
    Andi => ("andi", FuClass::Alu, Format::I2),
    Ori  => ("ori",  FuClass::Alu, Format::I2),
    Xori => ("xori", FuClass::Alu, Format::I2),
    Slli => ("slli", FuClass::Alu, Format::I2),
    Srli => ("srli", FuClass::Alu, Format::I2),
    Srai => ("srai", FuClass::Alu, Format::I2),
    Slti => ("slti", FuClass::Alu, Format::I2),
    Lui  => ("lui",  FuClass::Alu, Format::I1),
    Nop  => ("nop",  FuClass::Alu, Format::None),
    // Integer multiply / divide ----------------------------------------------
    Mul  => ("mul",  FuClass::IntMul, Format::R3),
    Div  => ("div",  FuClass::IntDiv, Format::R3),
    Rem  => ("rem",  FuClass::IntDiv, Format::R3),
    // Memory ------------------------------------------------------------------
    Ld   => ("ld",   FuClass::Load,  Format::Mem),
    Sd   => ("sd",   FuClass::Store, Format::MemStore),
    // Control transfer ----------------------------------------------------------
    Beq  => ("beq",  FuClass::Ctu, Format::Branch),
    Bne  => ("bne",  FuClass::Ctu, Format::Branch),
    Blt  => ("blt",  FuClass::Ctu, Format::Branch),
    Bge  => ("bge",  FuClass::Ctu, Format::Branch),
    J    => ("j",    FuClass::Ctu, Format::Jump),
    Halt => ("halt", FuClass::Ctu, Format::None),
    // Floating point ------------------------------------------------------------
    FAdd => ("fadd", FuClass::FpAdd, Format::R3),
    FSub => ("fsub", FuClass::FpAdd, Format::R3),
    FNeg => ("fneg", FuClass::FpAdd, Format::U),
    FAbs => ("fabs", FuClass::FpAdd, Format::U),
    FLt  => ("flt",  FuClass::FpAdd, Format::R3),
    FLe  => ("fle",  FuClass::FpAdd, Format::R3),
    FEq  => ("feq",  FuClass::FpAdd, Format::R3),
    I2F  => ("i2f",  FuClass::FpAdd, Format::U),
    F2I  => ("f2i",  FuClass::FpAdd, Format::U),
    FMul => ("fmul", FuClass::FpMul, Format::R3),
    FDiv => ("fdiv", FuClass::FpDiv, Format::R3),
    FSqrt => ("fsqrt", FuClass::FpDiv, Format::U),
    // Synchronization ------------------------------------------------------------
    Wait => ("wait", FuClass::Sync, Format::S2),
    Post => ("post", FuClass::Sync, Format::S1),
}

impl Opcode {
    /// Whether this opcode writes a destination register.
    #[must_use]
    pub fn has_dest(self) -> bool {
        matches!(
            self.format(),
            Format::R3 | Format::I2 | Format::I1 | Format::Mem | Format::U
        )
    }

    /// Whether this opcode reads `rs1`.
    #[must_use]
    pub fn reads_rs1(self) -> bool {
        !matches!(self.format(), Format::I1 | Format::Jump | Format::None)
    }

    /// Whether this opcode reads `rs2`.
    #[must_use]
    pub fn reads_rs2(self) -> bool {
        matches!(
            self.format(),
            Format::R3 | Format::MemStore | Format::Branch | Format::S2
        )
    }

    /// Whether this is a control-transfer operation (executes on the CTU).
    #[must_use]
    pub fn is_control(self) -> bool {
        self.fu_class() == FuClass::Ctu
    }

    /// Whether this is a conditional branch (needs prediction).
    #[must_use]
    pub fn is_cond_branch(self) -> bool {
        matches!(self, Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge)
    }

    /// Whether decoding this opcode triggers a context switch under the
    /// Conditional Switch fetch policy (Section 5.1: integer divide, floating
    /// point multiply or divide, a synchronization primitive).
    #[must_use]
    pub fn triggers_cswitch(self) -> bool {
        matches!(
            self.fu_class(),
            FuClass::IntDiv | FuClass::FpMul | FuClass::FpDiv | FuClass::Sync
        )
    }

    /// Whether the opcode touches data memory.
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(self.fu_class(), FuClass::Load | FuClass::Store)
    }

    /// Whether the opcode is a synchronization primitive.
    #[must_use]
    pub fn is_sync(self) -> bool {
        self.fu_class() == FuClass::Sync
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonic_round_trips() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &op in Opcode::ALL {
            assert!(seen.insert(op.mnemonic()), "duplicate mnemonic {}", op);
        }
    }

    #[test]
    fn branch_classification() {
        assert!(Opcode::Beq.is_cond_branch());
        assert!(Opcode::J.is_control());
        assert!(!Opcode::J.is_cond_branch());
        assert!(Opcode::Halt.is_control());
        assert!(!Opcode::Add.is_control());
    }

    #[test]
    fn cswitch_triggers_match_paper_list() {
        // "integer divide, floating point multiply or divide, a
        // synchronization primitive" — and nothing else.
        for &op in Opcode::ALL {
            let expected = matches!(
                op,
                Opcode::Div
                    | Opcode::Rem
                    | Opcode::FMul
                    | Opcode::FDiv
                    | Opcode::FSqrt
                    | Opcode::Wait
                    | Opcode::Post
            );
            assert_eq!(op.triggers_cswitch(), expected, "{op}");
        }
    }

    #[test]
    fn dest_and_source_flags_are_consistent_with_format() {
        assert!(Opcode::Ld.has_dest());
        assert!(!Opcode::Sd.has_dest());
        assert!(Opcode::Sd.reads_rs2());
        assert!(!Opcode::Lui.reads_rs1());
        assert!(Opcode::Wait.reads_rs2());
        assert!(!Opcode::Post.reads_rs2());
        assert!(!Opcode::Halt.has_dest());
    }

    #[test]
    fn fu_class_index_matches_all_order() {
        for (i, &class) in FuClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i, "{class}");
            assert_eq!(FuClass::ALL[class.index()], class);
        }
    }

    #[test]
    fn fu_classes_cover_table1() {
        use std::collections::HashSet;
        let used: HashSet<FuClass> = Opcode::ALL.iter().map(|o| o.fu_class()).collect();
        for class in FuClass::ALL {
            assert!(used.contains(&class), "no opcode uses {class}");
        }
    }
}
