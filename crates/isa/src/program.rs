//! Linked programs: text segment, initial data image, and metadata.

use std::collections::BTreeMap;
use std::fmt;

use crate::encode::{decode, encode, DecodeError, EncodeError};
use crate::insn::Instruction;
use crate::predecode::{self, DecodedInsn};
use crate::WORD_BYTES;

/// Byte address at which the data segment begins.
///
/// Addresses below this are reserved (a null page), so a kernel bug that
/// dereferences an uninitialized register tends to fault visibly in tests
/// rather than silently aliasing live data.
pub const DATA_BASE: u64 = 0x1000;

/// Initial contents of data memory: a size plus a sparse list of words.
#[derive(Clone, PartialEq, Hash, Debug, Default)]
pub struct DataImage {
    /// Total data memory size in bytes (8-byte aligned).
    pub size: u64,
    /// `(byte address, value)` pairs of initially non-zero words.
    pub words: Vec<(u64, u64)>,
}

impl DataImage {
    /// Materializes the image into a flat vector of 64-bit words
    /// (index = byte address / 8), zero-filled elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if an initializer lies outside `size` or is unaligned.
    #[must_use]
    pub fn to_words(&self) -> Vec<u64> {
        let n = (self.size / WORD_BYTES) as usize;
        let mut mem = vec![0u64; n];
        for &(addr, value) in &self.words {
            assert_eq!(
                addr % WORD_BYTES,
                0,
                "unaligned data initializer at {addr:#x}"
            );
            let idx = (addr / WORD_BYTES) as usize;
            assert!(
                idx < n,
                "data initializer at {addr:#x} outside image of {} bytes",
                self.size
            );
            mem[idx] = value;
        }
        mem
    }
}

/// A fully linked program: instructions, entry point, and initial data.
///
/// All threads start at [`Program::entry`]; the homogeneous-multitasking
/// model of the paper means every thread executes the *same* text on a
/// different data partition (selected via the `tid` register seeded at
/// reset).
#[derive(Clone, PartialEq, Debug)]
pub struct Program {
    text: Vec<Instruction>,
    decoded: Vec<DecodedInsn>,
    entry: usize,
    data: DataImage,
    labels: BTreeMap<String, usize>,
}

impl Program {
    /// Creates a program from parts. Prefer
    /// [`ProgramBuilder`](crate::builder::ProgramBuilder) for anything
    /// non-trivial.
    ///
    /// # Panics
    ///
    /// Panics if `entry` is out of range or the text is empty.
    #[must_use]
    pub fn new(text: Vec<Instruction>, entry: usize, data: DataImage) -> Self {
        assert!(!text.is_empty(), "program text is empty");
        assert!(
            entry < text.len(),
            "entry {entry} outside text of {} instructions",
            text.len()
        );
        let decoded = predecode::predecode(&text);
        Program {
            text,
            decoded,
            entry,
            data,
            labels: BTreeMap::new(),
        }
    }

    /// Attaches debug labels (`name -> instruction index`).
    #[must_use]
    pub fn with_labels(mut self, labels: BTreeMap<String, usize>) -> Self {
        self.labels = labels;
        self
    }

    /// The instruction stream.
    #[must_use]
    pub fn text(&self) -> &[Instruction] {
        &self.text
    }

    /// The instruction at index `pc`, or `None` past the end.
    #[must_use]
    pub fn fetch(&self, pc: usize) -> Option<&Instruction> {
        self.text.get(pc)
    }

    /// The predecoded instruction stream (same indices as [`Program::text`]).
    #[must_use]
    pub fn decoded(&self) -> &[DecodedInsn] {
        &self.decoded
    }

    /// The predecoded instruction at index `pc`, or `None` past the end.
    #[must_use]
    pub fn fetch_decoded(&self, pc: usize) -> Option<&DecodedInsn> {
        self.decoded.get(pc)
    }

    /// Entry-point instruction index (shared by all threads).
    #[must_use]
    pub fn entry(&self) -> usize {
        self.entry
    }

    /// Initial data image.
    #[must_use]
    pub fn data(&self) -> &DataImage {
        &self.data
    }

    /// Debug labels attached by the builder or assembler.
    #[must_use]
    pub fn labels(&self) -> &BTreeMap<String, usize> {
        &self.labels
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Whether the text segment is empty (never true for a valid program).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Encodes the text segment to binary machine words.
    ///
    /// # Errors
    ///
    /// Returns the first encoding failure (immediate/branch-offset overflow).
    pub fn encode_text(&self) -> Result<Vec<u32>, EncodeError> {
        self.text
            .iter()
            .enumerate()
            .map(|(pc, insn)| encode(insn, pc as u32))
            .collect()
    }

    /// Rebuilds a program from machine words (labels are not recoverable).
    ///
    /// # Errors
    ///
    /// Returns the first decoding failure.
    ///
    /// # Panics
    ///
    /// Panics if `words` is empty or `entry` is out of range (same contract
    /// as [`Program::new`]).
    pub fn decode_text(words: &[u32], entry: usize, data: DataImage) -> Result<Self, DecodeError> {
        let text = words
            .iter()
            .enumerate()
            .map(|(pc, &w)| decode(w, pc as u32))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Program::new(text, entry, data))
    }

    /// Disassembles to text, one instruction per line, with label comments.
    #[must_use]
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let by_index: BTreeMap<usize, &str> = self
            .labels
            .iter()
            .map(|(name, &i)| (i, name.as_str()))
            .collect();
        let mut out = String::new();
        for (i, insn) in self.text.iter().enumerate() {
            if let Some(name) = by_index.get(&i) {
                let _ = writeln!(out, "{name}:");
            }
            let _ = writeln!(out, "    {insn}");
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program of {} instructions, {} data bytes, entry {}",
            self.text.len(),
            self.data.size,
            self.entry
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Opcode;
    use crate::reg::Reg;

    fn tiny() -> Program {
        let r = |i| Reg::new(i);
        Program::new(
            vec![
                Instruction::i2(Opcode::Addi, r(2), r(0), 1),
                Instruction::branch(Opcode::Bne, r(2), r(1), 0),
                Instruction::halt(),
            ],
            0,
            DataImage {
                size: 64,
                words: vec![(8, 42)],
            },
        )
    }

    #[test]
    fn data_image_materializes() {
        let p = tiny();
        let words = p.data().to_words();
        assert_eq!(words.len(), 8);
        assert_eq!(words[1], 42);
        assert_eq!(words[0], 0);
    }

    #[test]
    #[should_panic(expected = "outside image")]
    fn data_image_rejects_out_of_range() {
        let img = DataImage {
            size: 8,
            words: vec![(8, 1)],
        };
        let _ = img.to_words();
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn data_image_rejects_unaligned() {
        let img = DataImage {
            size: 16,
            words: vec![(4, 1)],
        };
        let _ = img.to_words();
    }

    #[test]
    fn predecoded_table_tracks_text() {
        let p = tiny();
        assert_eq!(p.decoded().len(), p.len());
        for (d, i) in p.decoded().iter().zip(p.text()) {
            assert_eq!(d.op, i.op);
            assert_eq!(d.dest, i.dest());
            assert_eq!(d.srcs, i.sources());
            assert_eq!(d.imm, i.imm);
            assert_eq!(d.fu, i.op.fu_class());
        }
        assert_eq!(p.fetch_decoded(2).map(|d| d.op), Some(Opcode::Halt));
        assert!(p.fetch_decoded(3).is_none());
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = tiny();
        let words = p.encode_text().unwrap();
        let back = Program::decode_text(&words, p.entry(), p.data().clone()).unwrap();
        assert_eq!(back.text(), p.text());
    }

    #[test]
    fn disassembly_includes_labels() {
        let mut labels = BTreeMap::new();
        labels.insert("loop".to_string(), 1);
        let p = tiny().with_labels(labels);
        let asm = p.disassemble();
        assert!(asm.contains("loop:"), "{asm}");
        assert!(asm.contains("halt"), "{asm}");
    }

    #[test]
    #[should_panic(expected = "entry")]
    fn rejects_bad_entry() {
        let _ = Program::new(vec![Instruction::halt()], 3, DataImage::default());
    }
}
