//! The decoded instruction representation the simulators operate on.

use std::fmt;

use crate::op::{Format, Opcode};
use crate::reg::Reg;

/// A decoded instruction.
///
/// Fields that an opcode's [`Format`] does not use are ignored (and kept at
/// their `Default` values by the constructors). Branch and jump targets are
/// stored as *absolute* instruction indices in `imm` — the
/// [`encoder`](crate::encode) converts to PC-relative offsets and back, and
/// the [`ProgramBuilder`](crate::builder::ProgramBuilder) resolves labels to
/// absolute indices.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Instruction {
    /// Operation.
    pub op: Opcode,
    /// Destination register (if [`Opcode::has_dest`]).
    pub rd: Reg,
    /// First source register.
    pub rs1: Reg,
    /// Second source register.
    pub rs2: Reg,
    /// Immediate: ALU immediate, memory displacement in bytes, or absolute
    /// branch/jump target (instruction index).
    pub imm: i32,
}

impl Default for Opcode {
    fn default() -> Self {
        Opcode::Nop
    }
}

impl Instruction {
    /// A no-operation.
    pub const NOP: Instruction = Instruction {
        op: Opcode::Nop,
        rd: Reg::TID,
        rs1: Reg::TID,
        rs2: Reg::TID,
        imm: 0,
    };

    /// Three-register instruction (`op rd, rs1, rs2`).
    #[must_use]
    pub fn r3(op: Opcode, rd: Reg, rs1: Reg, rs2: Reg) -> Self {
        debug_assert_eq!(op.format(), Format::R3);
        Instruction { op, rd, rs1, rs2, imm: 0 }
    }

    /// Register-immediate instruction (`op rd, rs1, imm`).
    #[must_use]
    pub fn i2(op: Opcode, rd: Reg, rs1: Reg, imm: i32) -> Self {
        debug_assert_eq!(op.format(), Format::I2);
        Instruction { op, rd, rs1, rs2: Reg::default(), imm }
    }

    /// Destination-immediate instruction (`lui rd, imm`).
    #[must_use]
    pub fn i1(op: Opcode, rd: Reg, imm: i32) -> Self {
        debug_assert_eq!(op.format(), Format::I1);
        Instruction { op, rd, rs1: Reg::default(), rs2: Reg::default(), imm }
    }

    /// Load (`ld rd, imm(rs1)`).
    #[must_use]
    pub fn load(rd: Reg, base: Reg, disp: i32) -> Self {
        Instruction { op: Opcode::Ld, rd, rs1: base, rs2: Reg::default(), imm: disp }
    }

    /// Store (`sd rs2, imm(rs1)`).
    #[must_use]
    pub fn store(src: Reg, base: Reg, disp: i32) -> Self {
        Instruction { op: Opcode::Sd, rd: Reg::default(), rs1: base, rs2: src, imm: disp }
    }

    /// Conditional branch to absolute instruction index `target`.
    #[must_use]
    pub fn branch(op: Opcode, rs1: Reg, rs2: Reg, target: i32) -> Self {
        debug_assert_eq!(op.format(), Format::Branch);
        Instruction { op, rd: Reg::default(), rs1, rs2, imm: target }
    }

    /// Unconditional jump to absolute instruction index `target`.
    #[must_use]
    pub fn jump(target: i32) -> Self {
        Instruction { op: Opcode::J, rd: Reg::default(), rs1: Reg::default(), rs2: Reg::default(), imm: target }
    }

    /// Unary register instruction (`op rd, rs1`).
    #[must_use]
    pub fn unary(op: Opcode, rd: Reg, rs1: Reg) -> Self {
        debug_assert_eq!(op.format(), Format::U);
        Instruction { op, rd, rs1, rs2: Reg::default(), imm: 0 }
    }

    /// `wait rs1, rs2` — spin until `mem[rs1] >= rs2`.
    #[must_use]
    pub fn wait(addr: Reg, value: Reg) -> Self {
        Instruction { op: Opcode::Wait, rd: Reg::default(), rs1: addr, rs2: value, imm: 0 }
    }

    /// `post rs1` — atomic `mem[rs1] += 1`.
    #[must_use]
    pub fn post(addr: Reg) -> Self {
        Instruction { op: Opcode::Post, rd: Reg::default(), rs1: addr, rs2: Reg::default(), imm: 0 }
    }

    /// `halt` — retire this thread.
    #[must_use]
    pub fn halt() -> Self {
        Instruction { op: Opcode::Halt, ..Instruction::NOP }
    }

    /// The destination register, if the opcode writes one.
    #[must_use]
    pub fn dest(&self) -> Option<Reg> {
        self.op.has_dest().then_some(self.rd)
    }

    /// Source registers actually read by this instruction (0, 1, or 2).
    #[must_use]
    pub fn sources(&self) -> [Option<Reg>; 2] {
        [
            self.op.reads_rs1().then_some(self.rs1),
            self.op.reads_rs2().then_some(self.rs2),
        ]
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.op.mnemonic();
        match self.op.format() {
            Format::R3 => write!(f, "{m} {}, {}, {}", self.rd, self.rs1, self.rs2),
            Format::I2 => write!(f, "{m} {}, {}, {}", self.rd, self.rs1, self.imm),
            Format::I1 => write!(f, "{m} {}, {}", self.rd, self.imm),
            Format::Mem => write!(f, "{m} {}, {}({})", self.rd, self.imm, self.rs1),
            Format::MemStore => write!(f, "{m} {}, {}({})", self.rs2, self.imm, self.rs1),
            Format::Branch => write!(f, "{m} {}, {}, {}", self.rs1, self.rs2, self.imm),
            Format::Jump => write!(f, "{m} {}", self.imm),
            Format::S2 => write!(f, "{m} {}, {}", self.rs1, self.rs2),
            Format::S1 => write!(f, "{m} {}", self.rs1),
            Format::U => write!(f, "{m} {}, {}", self.rd, self.rs1),
            Format::None => f.write_str(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let r = |i| Reg::new(i);
        assert_eq!(Instruction::r3(Opcode::Add, r(3), r(1), r(2)).to_string(), "add r3, r1, r2");
        assert_eq!(Instruction::load(r(4), r(2), 8).to_string(), "ld r4, 8(r2)");
        assert_eq!(Instruction::store(r(4), r(2), -8).to_string(), "sd r4, -8(r2)");
        assert_eq!(Instruction::branch(Opcode::Beq, r(1), r(2), 7).to_string(), "beq r1, r2, 7");
        assert_eq!(Instruction::halt().to_string(), "halt");
        assert_eq!(Instruction::NOP.to_string(), "nop");
    }

    #[test]
    fn dest_and_sources() {
        let r = |i| Reg::new(i);
        let add = Instruction::r3(Opcode::Add, r(3), r(1), r(2));
        assert_eq!(add.dest(), Some(r(3)));
        assert_eq!(add.sources(), [Some(r(1)), Some(r(2))]);

        let st = Instruction::store(r(4), r(2), 0);
        assert_eq!(st.dest(), None);
        assert_eq!(st.sources(), [Some(r(2)), Some(r(4))]);

        let lui = Instruction::i1(Opcode::Lui, r(5), 10);
        assert_eq!(lui.sources(), [None, None]);
    }
}
