//! A small two-pass text assembler (and the matching disassembler lives on
//! [`Program::disassemble`]).
//!
//! Syntax, one instruction per line:
//!
//! ```text
//! # comment                  ; also a comment
//! start:                     # label definition
//!     li   r2, 10            # pseudo: expands to lui/addi
//!     addi r2, r2, -1
//! loop:
//!     add  r3, r3, r2
//!     bne  r2, r4, loop      # branch to label (or absolute index)
//!     ld   r5, 8(r6)
//!     sd   r5, 0(r6)
//!     halt
//! ```
//!
//! The assembler exists for tests, examples, and debugging dumps; the
//! workloads construct programs through the
//! [`ProgramBuilder`](crate::builder::ProgramBuilder) API instead.

use std::collections::BTreeMap;
use std::fmt;

use crate::insn::Instruction;
use crate::op::{Format, Opcode};
use crate::program::{DataImage, Program};
use crate::reg::Reg;

/// Error produced by [`assemble`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// 1-based byte column of the offending token (0 when the error is
    /// not tied to a token, e.g. empty input).
    pub col: usize,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

impl AsmError {
    /// The offending token, when the error is tied to one.
    #[must_use]
    pub fn token(&self) -> Option<&str> {
        match &self.kind {
            AsmErrorKind::UnknownMnemonic(t)
            | AsmErrorKind::BadOperand(t)
            | AsmErrorKind::UndefinedLabel(t)
            | AsmErrorKind::DuplicateLabel(t) => Some(t),
            AsmErrorKind::WrongArity { .. } | AsmErrorKind::Empty => None,
        }
    }
}

/// Classification of assembly errors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AsmErrorKind {
    /// Unknown mnemonic.
    UnknownMnemonic(String),
    /// Malformed operand text.
    BadOperand(String),
    /// Wrong number of operands for the mnemonic's format.
    WrongArity {
        /// Expected operand count.
        expected: usize,
        /// Operands found.
        found: usize,
    },
    /// Reference to an undefined label.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
    /// No instructions in the source.
    Empty,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.col > 0 {
            write!(f, "line {}, col {}: ", self.line, self.col)?;
        } else {
            write!(f, "line {}: ", self.line)?;
        }
        match &self.kind {
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic `{m}`"),
            AsmErrorKind::BadOperand(o) => write!(f, "bad operand `{o}`"),
            AsmErrorKind::WrongArity { expected, found } => {
                write!(f, "expected {expected} operands, found {found}")
            }
            AsmErrorKind::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmErrorKind::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmErrorKind::Empty => f.write_str("no instructions"),
        }
    }
}

impl std::error::Error for AsmError {}

/// One source line being assembled: the 1-based line number plus the raw
/// line text, so any token (a subslice of that text) can report its
/// 1-based byte column in diagnostics.
#[derive(Clone, Copy)]
struct Ctx<'a> {
    line: usize,
    raw: &'a str,
}

impl Ctx<'_> {
    /// 1-based byte column of `tok` within the raw line. Falls back to 1
    /// if `tok` is not a subslice of the line (never the case for tokens
    /// produced by the line splitter).
    fn col_of(&self, tok: &str) -> usize {
        let base = self.raw.as_ptr() as usize;
        let p = tok.as_ptr() as usize;
        if p >= base && p + tok.len() <= base + self.raw.len() {
            p - base + 1
        } else {
            1
        }
    }

    fn err(&self, tok: &str, kind: AsmErrorKind) -> AsmError {
        AsmError {
            line: self.line,
            col: self.col_of(tok),
            kind,
        }
    }
}

fn parse_reg(tok: &str, ctx: Ctx<'_>) -> Result<Reg, AsmError> {
    let idx: u8 = tok
        .strip_prefix('r')
        .and_then(|n| n.parse().ok())
        .filter(|&n| (n as usize) < crate::REG_FILE_SIZE)
        .ok_or_else(|| ctx.err(tok, AsmErrorKind::BadOperand(tok.to_string())))?;
    Ok(Reg::new(idx))
}

fn parse_imm(tok: &str, ctx: Ctx<'_>) -> Result<i64, AsmError> {
    let parse = |s: &str, radix| i64::from_str_radix(s, radix).ok();
    let v = if let Some(hex) = tok.strip_prefix("0x") {
        parse(hex, 16)
    } else if let Some(hex) = tok.strip_prefix("-0x") {
        parse(hex, 16).map(|v| -v)
    } else {
        tok.parse().ok()
    };
    v.ok_or_else(|| ctx.err(tok, AsmErrorKind::BadOperand(tok.to_string())))
}

/// A branch target: already-numeric, or a label to resolve in pass two
/// (carrying its source position for the undefined-label diagnostic).
enum Target {
    Abs(i32),
    Label { name: String, col: usize },
}

fn parse_target(tok: &str, ctx: Ctx<'_>) -> Result<Target, AsmError> {
    if tok
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_digit() || c == '-')
    {
        Ok(Target::Abs(parse_imm(tok, ctx)? as i32))
    } else {
        Ok(Target::Label {
            name: tok.to_string(),
            col: ctx.col_of(tok),
        })
    }
}

/// `disp(base)` operand of loads/stores.
fn parse_mem_operand(tok: &str, ctx: Ctx<'_>) -> Result<(Reg, i32), AsmError> {
    let open = tok.find('(');
    let close = tok.ends_with(')');
    let (Some(open), true) = (open, close) else {
        return Err(ctx.err(tok, AsmErrorKind::BadOperand(tok.to_string())));
    };
    let disp = if open == 0 {
        0
    } else {
        parse_imm(&tok[..open], ctx)? as i32
    };
    let base = parse_reg(&tok[open + 1..tok.len() - 1], ctx)?;
    Ok((base, disp))
}

struct PendingInsn {
    line: usize,
    op: Opcode,
    rd: Reg,
    rs1: Reg,
    rs2: Reg,
    imm: i32,
    target: Option<Target>,
}

/// Assembles source text into a [`Program`] with the given initial data
/// image (use `DataImage::default()` when the program needs no data).
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered (unknown mnemonic, bad
/// operand, arity mismatch, undefined/duplicate label, or empty input).
pub fn assemble(source: &str, data: DataImage) -> Result<Program, AsmError> {
    let mut labels: BTreeMap<String, usize> = BTreeMap::new();
    let mut pending: Vec<PendingInsn> = Vec::new();

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let ctx = Ctx { line, raw };
        let code = raw.split(['#', ';']).next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        let mut rest = code;
        // Leading labels (possibly several on one line).
        while let Some(colon) = rest.find(':') {
            let (name, tail) = rest.split_at(colon);
            let name = name.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                break;
            }
            if labels.insert(name.to_string(), pending.len()).is_some() {
                return Err(ctx.err(name, AsmErrorKind::DuplicateLabel(name.to_string())));
            }
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let (mnemonic, operands_text) = match rest.split_once(char::is_whitespace) {
            Some((m, o)) => (m, o.trim()),
            None => (rest, ""),
        };
        // `li` pseudo-instruction: expand immediately.
        if mnemonic == "li" {
            let ops: Vec<&str> = operands_text
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            if ops.len() != 2 {
                return Err(ctx.err(
                    mnemonic,
                    AsmErrorKind::WrongArity {
                        expected: 2,
                        found: ops.len(),
                    },
                ));
            }
            let rd = parse_reg(ops[0], ctx)?;
            let value = parse_imm(ops[1], ctx)?;
            let mut b = crate::builder::ProgramBuilder::new();
            // Builder registers don't matter here; we only reuse its
            // li-expansion by emitting into a scratch builder and copying.
            b.li(rd, value);
            let scratch = b.build(1).expect("li expansion is label-free");
            for insn in scratch.text() {
                pending.push(PendingInsn {
                    line,
                    op: insn.op,
                    rd: insn.rd,
                    rs1: insn.rs1,
                    rs2: insn.rs2,
                    imm: insn.imm,
                    target: None,
                });
            }
            continue;
        }
        let op = Opcode::from_mnemonic(mnemonic).ok_or_else(|| {
            ctx.err(
                mnemonic,
                AsmErrorKind::UnknownMnemonic(mnemonic.to_string()),
            )
        })?;
        let ops: Vec<&str> = operands_text
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        let arity = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(ctx.err(
                    mnemonic,
                    AsmErrorKind::WrongArity {
                        expected: n,
                        found: ops.len(),
                    },
                ))
            }
        };
        let mut insn = PendingInsn {
            line,
            op,
            rd: Reg::default(),
            rs1: Reg::default(),
            rs2: Reg::default(),
            imm: 0,
            target: None,
        };
        match op.format() {
            Format::R3 => {
                arity(3)?;
                insn.rd = parse_reg(ops[0], ctx)?;
                insn.rs1 = parse_reg(ops[1], ctx)?;
                insn.rs2 = parse_reg(ops[2], ctx)?;
            }
            Format::I2 => {
                arity(3)?;
                insn.rd = parse_reg(ops[0], ctx)?;
                insn.rs1 = parse_reg(ops[1], ctx)?;
                insn.imm = parse_imm(ops[2], ctx)? as i32;
            }
            Format::I1 => {
                arity(2)?;
                insn.rd = parse_reg(ops[0], ctx)?;
                insn.imm = parse_imm(ops[1], ctx)? as i32;
            }
            Format::Mem => {
                arity(2)?;
                insn.rd = parse_reg(ops[0], ctx)?;
                let (base, disp) = parse_mem_operand(ops[1], ctx)?;
                insn.rs1 = base;
                insn.imm = disp;
            }
            Format::MemStore => {
                arity(2)?;
                insn.rs2 = parse_reg(ops[0], ctx)?;
                let (base, disp) = parse_mem_operand(ops[1], ctx)?;
                insn.rs1 = base;
                insn.imm = disp;
            }
            Format::Branch => {
                arity(3)?;
                insn.rs1 = parse_reg(ops[0], ctx)?;
                insn.rs2 = parse_reg(ops[1], ctx)?;
                insn.target = Some(parse_target(ops[2], ctx)?);
            }
            Format::Jump => {
                arity(1)?;
                insn.target = Some(parse_target(ops[0], ctx)?);
            }
            Format::S2 => {
                arity(2)?;
                insn.rs1 = parse_reg(ops[0], ctx)?;
                insn.rs2 = parse_reg(ops[1], ctx)?;
            }
            Format::S1 => {
                arity(1)?;
                insn.rs1 = parse_reg(ops[0], ctx)?;
            }
            Format::U => {
                arity(2)?;
                insn.rd = parse_reg(ops[0], ctx)?;
                insn.rs1 = parse_reg(ops[1], ctx)?;
            }
            Format::None => arity(0)?,
        }
        pending.push(insn);
    }

    if pending.is_empty() {
        return Err(AsmError {
            line: 0,
            col: 0,
            kind: AsmErrorKind::Empty,
        });
    }

    let text = pending
        .into_iter()
        .map(|p| {
            let imm = match p.target {
                None => p.imm,
                Some(Target::Abs(i)) => i,
                Some(Target::Label { name, col }) => *labels.get(&name).ok_or_else(|| AsmError {
                    line: p.line,
                    col,
                    kind: AsmErrorKind::UndefinedLabel(name.clone()),
                })? as i32,
            };
            Ok(Instruction {
                op: p.op,
                rd: p.rd,
                rs1: p.rs1,
                rs2: p.rs2,
                imm,
            })
        })
        .collect::<Result<Vec<_>, AsmError>>()?;

    Ok(Program::new(text, 0, data).with_labels(labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;

    #[test]
    fn assembles_and_runs_a_loop() {
        let src = "
            # compute 5! into r4, spin loop with label
            li   r2, 5
            li   r3, 1
            li   r4, 1
        loop:
            mul  r4, r4, r2
            sub  r2, r2, r3
            bne  r2, r3, loop
            halt
        ";
        let p = assemble(
            src,
            DataImage {
                size: 64,
                words: vec![],
            },
        )
        .unwrap();
        let mut i = Interp::new(&p, 1);
        i.run().unwrap();
        assert_eq!(i.reg(0, Reg::new(4)), 120);
    }

    #[test]
    fn memory_operands_parse() {
        let src = "
            ld r2, 8(r3)
            sd r2, -16(r3)
            sd r2, (r3)
            halt
        ";
        let p = assemble(src, DataImage::default()).unwrap();
        assert_eq!(p.text()[0], Instruction::load(Reg::new(2), Reg::new(3), 8));
        assert_eq!(
            p.text()[1],
            Instruction::store(Reg::new(2), Reg::new(3), -16)
        );
        assert_eq!(p.text()[2], Instruction::store(Reg::new(2), Reg::new(3), 0));
    }

    #[test]
    fn round_trips_through_disassembly() {
        let src = "
        entry:
            addi r2, r1, 3
            fadd r3, r2, r2
            beq  r2, r3, entry
            j    entry
            wait r4, r5
            post r4
            halt
        ";
        let p = assemble(src, DataImage::default()).unwrap();
        let dis = p.disassemble();
        // Reassembling the disassembly (branch targets are absolute indices
        // there, which `parse_target` accepts) gives identical text.
        let p2 = assemble(&dis, DataImage::default()).unwrap();
        assert_eq!(p.text(), p2.text());
    }

    #[test]
    fn unknown_mnemonic_is_reported_with_line() {
        let e = assemble("  nope r1, r2\n", DataImage::default()).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(matches!(e.kind, AsmErrorKind::UnknownMnemonic(ref m) if m == "nope"));
    }

    #[test]
    fn arity_and_operand_errors() {
        let e = assemble("add r1, r2\nhalt\n", DataImage::default()).unwrap_err();
        assert_eq!(
            e.kind,
            AsmErrorKind::WrongArity {
                expected: 3,
                found: 2
            }
        );
        let e = assemble("add r1, r2, r999\n", DataImage::default()).unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::BadOperand(_)));
        let e = assemble("beq r1, r2, nowhere\nhalt\n", DataImage::default()).unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::UndefinedLabel(ref l) if l == "nowhere"));
    }

    #[test]
    fn bad_operand_mid_file_reports_line_col_and_token() {
        // The bad operand `r99x` sits on line 4 of a multi-line source;
        // the diagnostic must name the line, the column of the token
        // itself (not the line start), and the token text.
        let src = "\
entry:
    li   r2, 3
    addi r3, r2, 1
    add  r4, r3, r99x
    halt
";
        let e = assemble(src, DataImage::default()).unwrap_err();
        assert_eq!(e.line, 4);
        assert_eq!(e.col, 18, "column points at the offending token");
        assert_eq!(e.token(), Some("r99x"));
        assert!(matches!(e.kind, AsmErrorKind::BadOperand(ref t) if t == "r99x"));
        let msg = e.to_string();
        assert!(
            msg.contains("line 4") && msg.contains("col 18") && msg.contains("`r99x`"),
            "diagnostic must be actionable, got: {msg}"
        );
    }

    #[test]
    fn unknown_mnemonic_column_points_at_the_mnemonic() {
        let e = assemble("  nope r1, r2\n", DataImage::default()).unwrap_err();
        assert_eq!((e.line, e.col), (1, 3));
        assert_eq!(e.token(), Some("nope"));
    }

    #[test]
    fn duplicate_labels_rejected() {
        let e = assemble("a:\nnop\na:\nhalt\n", DataImage::default()).unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::DuplicateLabel(ref l) if l == "a"));
    }

    #[test]
    fn empty_source_rejected() {
        let e = assemble("# only comments\n", DataImage::default()).unwrap_err();
        assert_eq!(e.kind, AsmErrorKind::Empty);
    }

    #[test]
    fn hex_immediates() {
        let p = assemble(
            "addi r2, r3, 0x7f\naddi r2, r3, -0x10\nhalt\n",
            DataImage::default(),
        )
        .unwrap();
        assert_eq!(p.text()[0].imm, 127);
        assert_eq!(p.text()[1].imm, -16);
    }
}
