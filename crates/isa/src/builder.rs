//! A program-construction DSL standing in for the paper's SDSP C compiler.
//!
//! The builder allocates thread-relative registers, lays out a data segment,
//! resolves forward branch labels, and enforces the static register
//! partition: [`ProgramBuilder::build`] fails if the kernel uses more
//! registers than one thread's window of the 128-entry file provides.
//!
//! Kernels written against this builder follow the paper's *homogeneous
//! multitasking* model: all threads run the same text, distinguishing
//! themselves through the `tid` register ([`Reg::TID`]) seeded at reset.

use std::collections::BTreeMap;
use std::fmt;

use crate::insn::Instruction;
use crate::op::Opcode;
use crate::program::{DataImage, Program, DATA_BASE};
use crate::reg::Reg;
use crate::semantics::from_f64;
use crate::{window_size, MAX_THREADS, WORD_BYTES};

/// A forward-referenceable code label.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label(usize);

/// Error produced by [`ProgramBuilder::build`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BuildError {
    /// The kernel allocated more registers than one thread's window holds.
    RegisterBudget {
        /// Registers the kernel allocated (including the two seeded ones).
        used: usize,
        /// Window size for the requested thread count.
        window: usize,
        /// Requested thread count.
        threads: usize,
    },
    /// A label was referenced but never bound.
    UnboundLabel(usize),
    /// The program contains no instructions.
    EmptyProgram,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::RegisterBudget { used, window, threads } => write!(
                f,
                "kernel uses {used} registers but a {threads}-thread partition provides only {window}"
            ),
            BuildError::UnboundLabel(id) => write!(f, "label L{id} referenced but never bound"),
            BuildError::EmptyProgram => f.write_str("program contains no instructions"),
        }
    }
}

impl std::error::Error for BuildError {}

#[derive(Clone, Debug)]
enum Pending {
    Ready(Instruction),
    Branch {
        op: Opcode,
        rs1: Reg,
        rs2: Reg,
        label: Label,
    },
    Jump {
        label: Label,
    },
}

/// Incrementally builds a [`Program`].
///
/// ```
/// use smt_isa::builder::ProgramBuilder;
///
/// let mut b = ProgramBuilder::new();
/// let x = b.reg();
/// let zero = b.reg();
/// let loop_top = b.label();
/// b.li(x, 3);
/// b.li(zero, 0);
/// b.bind(loop_top);
/// b.addi(x, x, -1);
/// b.bne(x, zero, loop_top);
/// b.halt();
/// let program = b.build(4)?;
/// assert_eq!(program.entry(), 0);
/// # Ok::<(), smt_isa::builder::BuildError>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    code: Vec<Pending>,
    next_reg: u8,
    labels: Vec<Option<usize>>,
    named: BTreeMap<String, usize>,
    data_len: u64,
    data_words: Vec<(u64, u64)>,
}

impl ProgramBuilder {
    /// Creates an empty builder. Registers [`Reg::TID`] and
    /// [`Reg::NTHREADS`] are pre-allocated.
    #[must_use]
    pub fn new() -> Self {
        ProgramBuilder {
            next_reg: Reg::FIRST_FREE.raw(),
            ..Default::default()
        }
    }

    // ---- registers ---------------------------------------------------------

    /// Allocates a fresh thread-relative register.
    ///
    /// # Panics
    ///
    /// Panics if the full 128-register file is exhausted (the per-thread
    /// budget is checked later, in [`build`](Self::build)).
    pub fn reg(&mut self) -> Reg {
        let r = Reg::new(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Allocates `n` fresh registers.
    pub fn regs<const N: usize>(&mut self) -> [Reg; N] {
        std::array::from_fn(|_| self.reg())
    }

    /// The register holding this thread's id at entry.
    #[must_use]
    pub fn tid_reg(&self) -> Reg {
        Reg::TID
    }

    /// The register holding the thread count at entry.
    #[must_use]
    pub fn nthreads_reg(&self) -> Reg {
        Reg::NTHREADS
    }

    /// Number of registers allocated so far (including the seeded two).
    #[must_use]
    pub fn regs_used(&self) -> usize {
        self.next_reg as usize
    }

    // ---- labels ------------------------------------------------------------

    /// Creates a new, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label L{} bound twice", label.0);
        *slot = Some(self.code.len());
    }

    /// Creates and immediately binds a label, recording `name` for
    /// disassembly.
    pub fn named_label(&mut self, name: &str) -> Label {
        let l = self.label();
        self.bind(l);
        self.named.insert(name.to_string(), self.code.len());
        l
    }

    /// Current instruction index (where the next instruction will land).
    #[must_use]
    pub fn here(&self) -> usize {
        self.code.len()
    }

    // ---- data segment ------------------------------------------------------

    /// Reserves `bytes` of zeroed data memory; returns its byte address
    /// (8-byte aligned, at or above [`DATA_BASE`]).
    pub fn alloc_zeroed(&mut self, bytes: u64) -> u64 {
        let addr = DATA_BASE + self.data_len;
        self.data_len += bytes.div_ceil(WORD_BYTES) * WORD_BYTES;
        addr
    }

    /// Pads the data segment so the next allocation starts at a multiple of
    /// `align` bytes — e.g. page-aligned arrays, as real allocators produce.
    ///
    /// # Panics
    ///
    /// Panics unless `align` is a power of two ≥ 8.
    pub fn align_to(&mut self, align: u64) {
        assert!(
            align.is_power_of_two() && align >= WORD_BYTES,
            "bad alignment {align}"
        );
        let next = DATA_BASE + self.data_len;
        let aligned = next.div_ceil(align) * align;
        self.data_len += aligned - next;
    }

    /// Places `values` in data memory as 64-bit words; returns the base
    /// address.
    pub fn data_u64(&mut self, values: &[u64]) -> u64 {
        let base = self.alloc_zeroed(values.len() as u64 * WORD_BYTES);
        for (i, &v) in values.iter().enumerate() {
            if v != 0 {
                self.data_words.push((base + i as u64 * WORD_BYTES, v));
            }
        }
        base
    }

    /// Places `values` in data memory as IEEE-754 binary64 words.
    pub fn data_f64(&mut self, values: &[f64]) -> u64 {
        let words: Vec<u64> = values.iter().copied().map(from_f64).collect();
        self.data_u64(&words)
    }

    /// Total bytes of data memory laid out so far.
    #[must_use]
    pub fn data_len(&self) -> u64 {
        self.data_len
    }

    // ---- raw emission ------------------------------------------------------

    /// Appends an already-formed instruction.
    pub fn push(&mut self, insn: Instruction) {
        self.code.push(Pending::Ready(insn));
    }

    fn r3(&mut self, op: Opcode, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(Instruction::r3(op, rd, rs1, rs2));
    }

    fn i2(&mut self, op: Opcode, rd: Reg, rs1: Reg, imm: i32) {
        self.push(Instruction::i2(op, rd, rs1, imm));
    }

    // ---- integer ALU -------------------------------------------------------

    /// `rd = rs1 + rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.r3(Opcode::Add, rd, rs1, rs2);
    }
    /// `rd = rs1 - rs2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.r3(Opcode::Sub, rd, rs1, rs2);
    }
    /// `rd = rs1 & rs2`
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.r3(Opcode::And, rd, rs1, rs2);
    }
    /// `rd = rs1 | rs2`
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.r3(Opcode::Or, rd, rs1, rs2);
    }
    /// `rd = rs1 ^ rs2`
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.r3(Opcode::Xor, rd, rs1, rs2);
    }
    /// `rd = rs1 << rs2`
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.r3(Opcode::Sll, rd, rs1, rs2);
    }
    /// `rd = rs1 >> rs2` (logical)
    pub fn srl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.r3(Opcode::Srl, rd, rs1, rs2);
    }
    /// `rd = rs1 >> rs2` (arithmetic)
    pub fn sra(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.r3(Opcode::Sra, rd, rs1, rs2);
    }
    /// `rd = (rs1 < rs2)` signed
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.r3(Opcode::Slt, rd, rs1, rs2);
    }
    /// `rd = (rs1 < rs2)` unsigned
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.r3(Opcode::Sltu, rd, rs1, rs2);
    }
    /// `rd = rs1 + imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.i2(Opcode::Addi, rd, rs1, imm);
    }
    /// `rd = rs1 & imm`
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.i2(Opcode::Andi, rd, rs1, imm);
    }
    /// `rd = rs1 | imm`
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.i2(Opcode::Ori, rd, rs1, imm);
    }
    /// `rd = rs1 ^ imm`
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.i2(Opcode::Xori, rd, rs1, imm);
    }
    /// `rd = rs1 << imm`
    pub fn slli(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.i2(Opcode::Slli, rd, rs1, imm);
    }
    /// `rd = rs1 >> imm` (logical)
    pub fn srli(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.i2(Opcode::Srli, rd, rs1, imm);
    }
    /// `rd = rs1 >> imm` (arithmetic)
    pub fn srai(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.i2(Opcode::Srai, rd, rs1, imm);
    }
    /// `rd = (rs1 < imm)` signed
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.i2(Opcode::Slti, rd, rs1, imm);
    }
    /// `rd = imm << 12` (sign-extended)
    pub fn lui(&mut self, rd: Reg, imm: i32) {
        self.push(Instruction::i1(Opcode::Lui, rd, imm));
    }
    /// No-operation.
    pub fn nop(&mut self) {
        self.push(Instruction::NOP);
    }
    /// `rd = rs` (pseudo: `addi rd, rs, 0`)
    pub fn mov(&mut self, rd: Reg, rs: Reg) {
        self.addi(rd, rs, 0);
    }

    /// Materializes an arbitrary 64-bit constant into `rd`
    /// (pseudo-instruction; expands to 1 + O(64/12) real instructions).
    pub fn li(&mut self, rd: Reg, value: i64) {
        self.li_rec(rd, value);
    }

    fn li_rec(&mut self, rd: Reg, v: i64) {
        let lo12 = (v << 52) >> 52;
        let hi = v.wrapping_sub(lo12) >> 12;
        let hi_fits = (-(1 << 18)..(1 << 18)).contains(&hi);
        if hi_fits {
            self.lui(rd, hi as i32);
        } else {
            self.li_rec(rd, hi);
            self.slli(rd, rd, 12);
        }
        if lo12 != 0 || (hi_fits && hi == 0) {
            self.addi(rd, rd, lo12 as i32);
        }
    }

    /// Materializes a floating-point constant's bit pattern into `rd`.
    pub fn lif(&mut self, rd: Reg, value: f64) {
        self.li(rd, from_f64(value) as i64);
    }

    // ---- multiply / divide ---------------------------------------------------

    /// `rd = rs1 * rs2` (integer)
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.r3(Opcode::Mul, rd, rs1, rs2);
    }
    /// `rd = rs1 / rs2` (integer)
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.r3(Opcode::Div, rd, rs1, rs2);
    }
    /// `rd = rs1 % rs2` (integer)
    pub fn rem(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.r3(Opcode::Rem, rd, rs1, rs2);
    }

    // ---- memory ----------------------------------------------------------------

    /// `rd = mem[rs1 + disp]`
    pub fn ld(&mut self, rd: Reg, base: Reg, disp: i32) {
        self.push(Instruction::load(rd, base, disp));
    }

    /// `mem[rs1 + disp] = src`
    pub fn sd(&mut self, src: Reg, base: Reg, disp: i32) {
        self.push(Instruction::store(src, base, disp));
    }

    // ---- control transfer -------------------------------------------------------

    fn branch(&mut self, op: Opcode, rs1: Reg, rs2: Reg, label: Label) {
        self.code.push(Pending::Branch {
            op,
            rs1,
            rs2,
            label,
        });
    }

    /// Branch to `label` if `rs1 == rs2`.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(Opcode::Beq, rs1, rs2, label);
    }
    /// Branch to `label` if `rs1 != rs2`.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(Opcode::Bne, rs1, rs2, label);
    }
    /// Branch to `label` if `rs1 < rs2` (signed).
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(Opcode::Blt, rs1, rs2, label);
    }
    /// Branch to `label` if `rs1 >= rs2` (signed).
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: Label) {
        self.branch(Opcode::Bge, rs1, rs2, label);
    }
    /// Unconditional jump to `label`.
    pub fn j(&mut self, label: Label) {
        self.code.push(Pending::Jump { label });
    }

    /// Retire this thread.
    pub fn halt(&mut self) {
        self.push(Instruction::halt());
    }

    // ---- floating point ----------------------------------------------------------

    /// `rd = rs1 + rs2` (f64)
    pub fn fadd(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.r3(Opcode::FAdd, rd, rs1, rs2);
    }
    /// `rd = rs1 - rs2` (f64)
    pub fn fsub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.r3(Opcode::FSub, rd, rs1, rs2);
    }
    /// `rd = rs1 * rs2` (f64)
    pub fn fmul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.r3(Opcode::FMul, rd, rs1, rs2);
    }
    /// `rd = rs1 / rs2` (f64)
    pub fn fdiv(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.r3(Opcode::FDiv, rd, rs1, rs2);
    }
    /// `rd = -rs1` (f64)
    pub fn fneg(&mut self, rd: Reg, rs1: Reg) {
        self.push(Instruction::unary(Opcode::FNeg, rd, rs1));
    }
    /// `rd = |rs1|` (f64)
    pub fn fabs(&mut self, rd: Reg, rs1: Reg) {
        self.push(Instruction::unary(Opcode::FAbs, rd, rs1));
    }
    /// `rd = sqrt(rs1)` (f64)
    pub fn fsqrt(&mut self, rd: Reg, rs1: Reg) {
        self.push(Instruction::unary(Opcode::FSqrt, rd, rs1));
    }
    /// `rd = (rs1 < rs2)` (f64 compare, integer 0/1 result)
    pub fn flt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.r3(Opcode::FLt, rd, rs1, rs2);
    }
    /// `rd = (rs1 <= rs2)` (f64 compare)
    pub fn fle(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.r3(Opcode::FLe, rd, rs1, rs2);
    }
    /// `rd = (rs1 == rs2)` (f64 compare)
    pub fn feq(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.r3(Opcode::FEq, rd, rs1, rs2);
    }
    /// `rd = f64(rs1 as i64)`
    pub fn i2f(&mut self, rd: Reg, rs1: Reg) {
        self.push(Instruction::unary(Opcode::I2F, rd, rs1));
    }
    /// `rd = rs1 as i64` (truncating f64→int)
    pub fn f2i(&mut self, rd: Reg, rs1: Reg) {
        self.push(Instruction::unary(Opcode::F2I, rd, rs1));
    }

    // ---- synchronization ------------------------------------------------------------

    /// Spin until `mem[addr] >= value`.
    pub fn wait(&mut self, addr: Reg, value: Reg) {
        self.push(Instruction::wait(addr, value));
    }

    /// Atomically `mem[addr] += 1`.
    pub fn post(&mut self, addr: Reg) {
        self.push(Instruction::post(addr));
    }

    // ---- finalization -----------------------------------------------------------------

    /// Resolves labels and produces the linked [`Program`] for an
    /// `n_threads`-way register partition.
    ///
    /// # Errors
    ///
    /// * [`BuildError::RegisterBudget`] if the kernel does not fit one
    ///   thread's register window,
    /// * [`BuildError::UnboundLabel`] if a referenced label was never bound,
    /// * [`BuildError::EmptyProgram`] if nothing was emitted.
    ///
    /// # Panics
    ///
    /// Panics if `n_threads` is outside `1..=`[`MAX_THREADS`].
    pub fn build(&self, n_threads: usize) -> Result<Program, BuildError> {
        assert!(
            (1..=MAX_THREADS).contains(&n_threads),
            "thread count {n_threads} out of range 1..={MAX_THREADS}"
        );
        if self.code.is_empty() {
            return Err(BuildError::EmptyProgram);
        }
        let window = window_size(n_threads);
        let used = self.regs_used();
        if used > window {
            return Err(BuildError::RegisterBudget {
                used,
                window,
                threads: n_threads,
            });
        }
        let resolve = |label: Label| -> Result<i32, BuildError> {
            self.labels[label.0]
                .map(|i| i as i32)
                .ok_or(BuildError::UnboundLabel(label.0))
        };
        let mut text = Vec::with_capacity(self.code.len());
        for pending in &self.code {
            let insn = match *pending {
                Pending::Ready(insn) => insn,
                Pending::Branch {
                    op,
                    rs1,
                    rs2,
                    label,
                } => Instruction::branch(op, rs1, rs2, resolve(label)?),
                Pending::Jump { label } => Instruction::jump(resolve(label)?),
            };
            text.push(insn);
        }
        Ok(Program::new(text, 0, self.data_image()).with_labels(self.named.clone()))
    }

    fn data_image(&self) -> DataImage {
        DataImage {
            size: DATA_BASE + self.data_len,
            words: self.data_words.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;
    use crate::semantics::as_f64;

    #[test]
    fn register_budget_enforced() {
        let mut b = ProgramBuilder::new();
        for _ in 0..30 {
            let _ = b.reg();
        }
        b.halt();
        // 32 registers used (2 seeded + 30): fits 4 threads (window 32)…
        assert!(b.build(4).is_ok());
        // …but not 6 threads (window 21).
        match b.build(6) {
            Err(BuildError::RegisterBudget {
                used,
                window,
                threads,
            }) => {
                assert_eq!((used, window, threads), (32, 21, 6));
            }
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.j(l);
        assert_eq!(b.build(1), Err(BuildError::UnboundLabel(0)));
    }

    #[test]
    fn empty_program_is_an_error() {
        let b = ProgramBuilder::new();
        assert_eq!(b.build(1), Err(BuildError::EmptyProgram));
    }

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = ProgramBuilder::new();
        let x = b.reg();
        let end = b.label();
        b.li(x, 0);
        let top = b.named_label("top");
        b.addi(x, x, 1);
        let limit = b.reg();
        b.li(limit, 3);
        b.beq(x, limit, end);
        b.j(top);
        b.bind(end);
        b.halt();
        let p = b.build(2).unwrap();
        // The `beq` target must be the instruction before `halt`… i.e. the
        // bound position of `end`.
        let beq = p.text().iter().find(|i| i.op == Opcode::Beq).unwrap();
        assert_eq!(beq.imm as usize, p.len() - 1);
        assert!(p.labels().contains_key("top"));
    }

    #[test]
    fn li_materializes_constants_of_all_sizes() {
        let values: Vec<i64> = vec![
            0,
            1,
            -1,
            2047,
            2048,
            -2048,
            -2049,
            0xfff,
            0x1000,
            0x12345,
            -0x12345,
            0x7fff_ffff,
            -0x8000_0000,
            0x0005_dead_beef,
            i64::MAX,
            i64::MIN,
            from_f64(1.234567) as i64,
        ];
        let mut b = ProgramBuilder::new();
        let out = b.alloc_zeroed(values.len() as u64 * WORD_BYTES);
        let (tmp, addr) = (b.reg(), b.reg());
        for (i, &v) in values.iter().enumerate() {
            b.li(tmp, v);
            b.li(addr, (out + i as u64 * WORD_BYTES) as i64);
            b.sd(tmp, addr, 0);
        }
        b.halt();
        let p = b.build(1).unwrap();
        let mut interp = Interp::new(&p, 1);
        interp.run().unwrap();
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(
                interp.load_word(out + i as u64 * WORD_BYTES) as i64,
                v,
                "value #{i} = {v:#x}"
            );
        }
    }

    #[test]
    fn lif_round_trips_floats() {
        let mut b = ProgramBuilder::new();
        let out = b.alloc_zeroed(8);
        let (v, a) = (b.reg(), b.reg());
        b.lif(v, -2.5e-3);
        b.li(a, out as i64);
        b.sd(v, a, 0);
        b.halt();
        let p = b.build(1).unwrap();
        let mut interp = Interp::new(&p, 1);
        interp.run().unwrap();
        assert_eq!(as_f64(interp.load_word(out)), -2.5e-3);
    }

    #[test]
    fn data_layout_is_sequential_and_aligned() {
        let mut b = ProgramBuilder::new();
        let a = b.data_u64(&[1, 2, 3]);
        let c = b.data_f64(&[1.0]);
        let z = b.alloc_zeroed(12); // rounds up to 16
        let w = b.alloc_zeroed(8);
        assert_eq!(a, DATA_BASE);
        assert_eq!(c, DATA_BASE + 24);
        assert_eq!(z, DATA_BASE + 32);
        assert_eq!(w, DATA_BASE + 48);
        b.halt();
        let p = b.build(1).unwrap();
        let words = p.data().to_words();
        assert_eq!(words[(a / 8) as usize + 1], 2);
        assert_eq!(as_f64(words[(c / 8) as usize]), 1.0);
    }
}
