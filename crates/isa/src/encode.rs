//! Fixed 32-bit binary instruction encodings.
//!
//! The SDSP fetches blocks of four 32-bit instructions; this module defines
//! a concrete encoding so programs can be stored, hashed, and round-tripped.
//! The cycle simulator operates on decoded [`Instruction`]s for speed, but
//! `Program::encode`/`decode` and the assembler exercise this layer, and the
//! test-suite proves the round-trip is lossless.
//!
//! Layout (bit 31 is the MSB):
//!
//! | format    | `[31:26]` | `[25:19]` | `[18:12]` | `[11:5]` | `[11:0]` / other |
//! |-----------|-----------|-----------|-----------|----------|------------------|
//! | R3        | opcode    | rd        | rs1       | rs2      | —                |
//! | U         | opcode    | rd        | rs1       | —        | —                |
//! | I2 / Mem  | opcode    | rd        | rs1       | —        | imm12 (signed)   |
//! | MemStore  | opcode    | rs2       | rs1       | —        | imm12 (signed)   |
//! | Branch    | opcode    | rs1       | rs2       | —        | imm12 (signed, PC-relative) |
//! | I1 (lui)  | opcode    | rd        | imm19 (signed, `[18:0]`)                 |
//! | Jump      | opcode    | imm26 (signed, `[25:0]`, PC-relative)               |
//! | S2 (wait) | opcode    | —         | rs1       | rs2      | —                |
//! | S1 / None | opcode    | —         | rs1       | —        | —                |

use std::fmt;

use crate::insn::Instruction;
use crate::op::{Format, Opcode};
use crate::reg::Reg;

/// Error produced when an instruction cannot be encoded.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EncodeError {
    /// An immediate or PC-relative offset does not fit its field.
    ImmOutOfRange {
        /// The opcode being encoded.
        op: Opcode,
        /// The offending (possibly PC-relative) immediate.
        imm: i64,
        /// Width of the destination field in bits.
        bits: u32,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange { op, imm, bits } => {
                write!(f, "immediate {imm} of `{op}` does not fit in {bits} bits")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Error produced when a 32-bit word is not a valid instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The opcode field does not name an instruction.
    BadOpcode(u32),
    /// A register field exceeds the register-file size.
    BadRegister(u32),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(v) => write!(f, "invalid opcode field {v:#x}"),
            DecodeError::BadRegister(v) => write!(f, "invalid register field {v}"),
        }
    }
}

impl std::error::Error for DecodeError {}

const OP_SHIFT: u32 = 26;
const RD_SHIFT: u32 = 19;
const RS1_SHIFT: u32 = 12;
const RS2_SHIFT: u32 = 5;
const REG_MASK: u32 = 0x7f;

fn fit_signed(op: Opcode, value: i64, bits: u32) -> Result<u32, EncodeError> {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    if value < min || value > max {
        return Err(EncodeError::ImmOutOfRange {
            op,
            imm: value,
            bits,
        });
    }
    Ok((value as u32) & ((1u32 << bits) - 1))
}

fn sext(field: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((field << shift) as i32) >> shift
}

/// Encodes `insn`, located at instruction index `pc`, into a 32-bit word.
///
/// `pc` is needed because branch/jump targets are stored PC-relative in the
/// binary form but held as absolute indices in [`Instruction::imm`].
///
/// # Errors
///
/// Returns [`EncodeError::ImmOutOfRange`] if an immediate or branch offset
/// does not fit its field.
pub fn encode(insn: &Instruction, pc: u32) -> Result<u32, EncodeError> {
    let op = insn.op;
    let opbits = (op as u32) << OP_SHIFT;
    let rd = u32::from(insn.rd.raw()) << RD_SHIFT;
    let rs1 = u32::from(insn.rs1.raw()) << RS1_SHIFT;
    let rs2 = u32::from(insn.rs2.raw()) << RS2_SHIFT;
    let word = match op.format() {
        Format::R3 => opbits | rd | rs1 | rs2,
        Format::U => opbits | rd | rs1,
        Format::I2 | Format::Mem => opbits | rd | rs1 | fit_signed(op, i64::from(insn.imm), 12)?,
        Format::MemStore => {
            opbits
                | (u32::from(insn.rs2.raw()) << RD_SHIFT)
                | rs1
                | fit_signed(op, i64::from(insn.imm), 12)?
        }
        Format::Branch => {
            let rel = i64::from(insn.imm) - i64::from(pc);
            opbits
                | (u32::from(insn.rs1.raw()) << RD_SHIFT)
                | (u32::from(insn.rs2.raw()) << RS1_SHIFT)
                | fit_signed(op, rel, 12)?
        }
        Format::I1 => opbits | rd | fit_signed(op, i64::from(insn.imm), 19)?,
        Format::Jump => {
            let rel = i64::from(insn.imm) - i64::from(pc);
            opbits | fit_signed(op, rel, 26)?
        }
        Format::S2 => opbits | rs1 | rs2,
        Format::S1 => opbits | rs1,
        Format::None => opbits,
    };
    Ok(word)
}

fn reg_field(word: u32, shift: u32) -> Result<Reg, DecodeError> {
    let v = (word >> shift) & REG_MASK;
    if (v as usize) < crate::REG_FILE_SIZE {
        Ok(Reg::new(v as u8))
    } else {
        Err(DecodeError::BadRegister(v))
    }
}

/// Decodes the 32-bit word at instruction index `pc`.
///
/// # Errors
///
/// Returns an error if the opcode field is unassigned or a register field is
/// out of range.
pub fn decode(word: u32, pc: u32) -> Result<Instruction, DecodeError> {
    let opidx = (word >> OP_SHIFT) as usize;
    let op = *Opcode::ALL
        .get(opidx)
        .ok_or(DecodeError::BadOpcode(opidx as u32))?;
    let insn = match op.format() {
        Format::R3 => Instruction {
            op,
            rd: reg_field(word, RD_SHIFT)?,
            rs1: reg_field(word, RS1_SHIFT)?,
            rs2: reg_field(word, RS2_SHIFT)?,
            imm: 0,
        },
        Format::U => Instruction {
            op,
            rd: reg_field(word, RD_SHIFT)?,
            rs1: reg_field(word, RS1_SHIFT)?,
            rs2: Reg::default(),
            imm: 0,
        },
        Format::I2 | Format::Mem => Instruction {
            op,
            rd: reg_field(word, RD_SHIFT)?,
            rs1: reg_field(word, RS1_SHIFT)?,
            rs2: Reg::default(),
            imm: sext(word & 0xfff, 12),
        },
        Format::MemStore => Instruction {
            op,
            rd: Reg::default(),
            rs1: reg_field(word, RS1_SHIFT)?,
            rs2: reg_field(word, RD_SHIFT)?,
            imm: sext(word & 0xfff, 12),
        },
        Format::Branch => Instruction {
            op,
            rd: Reg::default(),
            rs1: reg_field(word, RD_SHIFT)?,
            rs2: reg_field(word, RS1_SHIFT)?,
            imm: sext(word & 0xfff, 12).wrapping_add(pc as i32),
        },
        Format::I1 => Instruction {
            op,
            rd: reg_field(word, RD_SHIFT)?,
            rs1: Reg::default(),
            rs2: Reg::default(),
            imm: sext(word & 0x7ffff, 19),
        },
        Format::Jump => Instruction {
            op,
            rd: Reg::default(),
            rs1: Reg::default(),
            rs2: Reg::default(),
            imm: sext(word & 0x3ff_ffff, 26).wrapping_add(pc as i32),
        },
        Format::S2 => Instruction {
            op,
            rd: Reg::default(),
            rs1: reg_field(word, RS1_SHIFT)?,
            rs2: reg_field(word, RS2_SHIFT)?,
            imm: 0,
        },
        Format::S1 => Instruction {
            op,
            rd: Reg::default(),
            rs1: reg_field(word, RS1_SHIFT)?,
            rs2: Reg::default(),
            imm: 0,
        },
        Format::None => Instruction {
            op,
            ..Instruction::NOP
        },
    };
    Ok(insn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Format;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn round_trip_representative_instructions() {
        let cases = [
            (Instruction::r3(Opcode::Add, r(3), r(1), r(2)), 0),
            (Instruction::r3(Opcode::FMul, r(20), r(19), r(18)), 5),
            (Instruction::i2(Opcode::Addi, r(4), r(4), -2048), 0),
            (Instruction::i2(Opcode::Slli, r(4), r(5), 63), 0),
            (Instruction::i1(Opcode::Lui, r(6), -262144), 0),
            (Instruction::load(r(7), r(8), 2047), 9),
            (Instruction::store(r(9), r(10), -1), 9),
            (Instruction::branch(Opcode::Bne, r(1), r(2), 100), 102),
            (Instruction::jump(0), 33_000_000),
            (Instruction::unary(Opcode::FNeg, r(11), r(12)), 1),
            (Instruction::wait(r(13), r(14)), 2),
            (Instruction::post(r(15)), 3),
            (Instruction::halt(), 4),
            (Instruction::NOP, 0),
        ];
        for (insn, pc) in cases {
            let word = encode(&insn, pc).unwrap_or_else(|e| panic!("{insn}: {e}"));
            let back = decode(word, pc).unwrap_or_else(|e| panic!("{insn}: {e}"));
            assert_eq!(back, insn, "round trip of `{insn}` at pc {pc}");
        }
    }

    #[test]
    fn branch_offset_limits() {
        let near = Instruction::branch(Opcode::Beq, r(0), r(0), 2047);
        assert!(encode(&near, 0).is_ok());
        let far = Instruction::branch(Opcode::Beq, r(0), r(0), 2048);
        assert_eq!(
            encode(&far, 0),
            Err(EncodeError::ImmOutOfRange {
                op: Opcode::Beq,
                imm: 2048,
                bits: 12
            })
        );
        // Backwards from a large PC is fine as long as the *relative* offset fits.
        let back = Instruction::branch(Opcode::Beq, r(0), r(0), 10_000);
        assert!(encode(&back, 10_100).is_ok());
    }

    #[test]
    fn immediate_limits() {
        assert!(encode(&Instruction::i2(Opcode::Addi, r(0), r(0), 2047), 0).is_ok());
        assert!(encode(&Instruction::i2(Opcode::Addi, r(0), r(0), 2048), 0).is_err());
        assert!(encode(&Instruction::i2(Opcode::Addi, r(0), r(0), -2048), 0).is_ok());
        assert!(encode(&Instruction::i2(Opcode::Addi, r(0), r(0), -2049), 0).is_err());
    }

    #[test]
    fn decode_rejects_bad_opcode() {
        let word = 63u32 << 26;
        assert_eq!(decode(word, 0), Err(DecodeError::BadOpcode(63)));
    }

    #[test]
    fn every_opcode_round_trips_with_default_operands() {
        for &op in Opcode::ALL {
            let insn = match op.format() {
                Format::R3 => Instruction::r3(op, r(1), r(2), r(3)),
                Format::I2 => Instruction::i2(op, r(1), r(2), 5),
                Format::I1 => Instruction::i1(op, r(1), 5),
                Format::Mem => Instruction::load(r(1), r(2), 8),
                Format::MemStore => Instruction::store(r(1), r(2), 8),
                Format::Branch => Instruction::branch(op, r(1), r(2), 12),
                Format::Jump => Instruction::jump(12),
                Format::S2 => Instruction::wait(r(1), r(2)),
                Format::S1 => Instruction::post(r(1)),
                Format::U => Instruction::unary(op, r(1), r(2)),
                Format::None => Instruction {
                    op,
                    ..Instruction::NOP
                },
            };
            let word = encode(&insn, 10).unwrap();
            assert_eq!(decode(word, 10).unwrap(), insn, "{op}");
        }
    }

    #[test]
    fn error_messages_are_informative() {
        let err = EncodeError::ImmOutOfRange {
            op: Opcode::Addi,
            imm: 9999,
            bits: 12,
        };
        assert_eq!(
            err.to_string(),
            "immediate 9999 of `addi` does not fit in 12 bits"
        );
        assert_eq!(
            DecodeError::BadOpcode(63).to_string(),
            "invalid opcode field 0x3f"
        );
    }
}
