//! Architectural semantics shared by the functional interpreter and the
//! cycle-accurate simulator.
//!
//! Keeping evaluation in one place guarantees the two simulators can never
//! disagree about *what* an instruction computes — only about *when*.

use crate::op::Opcode;

/// Register value. Integers are two's-complement `i64` stored as `u64`;
/// floating point is IEEE-754 binary64 stored by bit pattern.
pub type Value = u64;

/// Reinterprets a register value as `f64`.
#[must_use]
pub fn as_f64(v: Value) -> f64 {
    f64::from_bits(v)
}

/// Reinterprets an `f64` as a register value.
#[must_use]
pub fn from_f64(x: f64) -> Value {
    x.to_bits()
}

/// Computes the result of a register-writing, non-memory instruction.
///
/// `a` and `b` are the (renamed) source operand values; `imm` is the
/// instruction immediate. Memory, control, and sync opcodes are *not*
/// evaluated here.
///
/// Shift amounts are taken modulo 64. Integer division by zero yields
/// all-ones (`u64::MAX`), and remainder by zero yields the dividend,
/// mirroring common RISC behaviour so no architectural exception model is
/// needed for the paper's workloads.
///
/// # Panics
///
/// Panics if called with a memory, control-transfer, or sync opcode.
#[must_use]
pub fn alu_result(op: Opcode, a: Value, b: Value, imm: i32) -> Value {
    let ia = a as i64;
    let ib = b as i64;
    let im = i64::from(imm);
    let fa = as_f64(a);
    let fb = as_f64(b);
    match op {
        Opcode::Add => ia.wrapping_add(ib) as u64,
        Opcode::Sub => ia.wrapping_sub(ib) as u64,
        Opcode::And => a & b,
        Opcode::Or => a | b,
        Opcode::Xor => a ^ b,
        Opcode::Sll => a.wrapping_shl(b as u32 & 63),
        Opcode::Srl => a.wrapping_shr(b as u32 & 63),
        Opcode::Sra => (ia.wrapping_shr(b as u32 & 63)) as u64,
        Opcode::Slt => u64::from(ia < ib),
        Opcode::Sltu => u64::from(a < b),
        Opcode::Addi => ia.wrapping_add(im) as u64,
        Opcode::Andi => a & (im as u64),
        Opcode::Ori => a | (im as u64),
        Opcode::Xori => a ^ (im as u64),
        Opcode::Slli => a.wrapping_shl(imm as u32 & 63),
        Opcode::Srli => a.wrapping_shr(imm as u32 & 63),
        Opcode::Srai => (ia.wrapping_shr(imm as u32 & 63)) as u64,
        Opcode::Slti => u64::from(ia < im),
        Opcode::Lui => im.wrapping_shl(12) as u64,
        Opcode::Nop => 0,
        Opcode::Mul => ia.wrapping_mul(ib) as u64,
        Opcode::Div => {
            if ib == 0 {
                u64::MAX
            } else {
                ia.wrapping_div(ib) as u64
            }
        }
        Opcode::Rem => {
            if ib == 0 {
                a
            } else {
                ia.wrapping_rem(ib) as u64
            }
        }
        Opcode::FAdd => from_f64(fa + fb),
        Opcode::FSub => from_f64(fa - fb),
        Opcode::FNeg => from_f64(-fa),
        Opcode::FAbs => from_f64(fa.abs()),
        Opcode::FLt => u64::from(fa < fb),
        Opcode::FLe => u64::from(fa <= fb),
        Opcode::FEq => u64::from(fa == fb),
        Opcode::I2F => from_f64(ia as f64),
        Opcode::F2I => (fa as i64) as u64,
        Opcode::FMul => from_f64(fa * fb),
        Opcode::FDiv => from_f64(fa / fb),
        Opcode::FSqrt => from_f64(fa.sqrt()),
        other => panic!("alu_result called with non-computational opcode {other}"),
    }
}

/// Whether a conditional branch is taken given its source operand values.
///
/// # Panics
///
/// Panics if `op` is not a conditional branch.
#[must_use]
pub fn branch_taken(op: Opcode, a: Value, b: Value) -> bool {
    let ia = a as i64;
    let ib = b as i64;
    match op {
        Opcode::Beq => a == b,
        Opcode::Bne => a != b,
        Opcode::Blt => ia < ib,
        Opcode::Bge => ia >= ib,
        other => panic!("branch_taken called with non-branch opcode {other}"),
    }
}

/// Effective byte address of a load/store: `base + displacement`.
#[must_use]
pub fn effective_addr(base: Value, disp: i32) -> u64 {
    (base as i64).wrapping_add(i64::from(disp)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_ops() {
        assert_eq!(alu_result(Opcode::Add, 2, 3, 0), 5);
        assert_eq!(alu_result(Opcode::Sub, 2, 3, 0) as i64, -1);
        assert_eq!(alu_result(Opcode::Addi, 10, 0, -4), 6);
        assert_eq!(alu_result(Opcode::Slt, (-1i64) as u64, 0, 0), 1);
        assert_eq!(alu_result(Opcode::Sltu, (-1i64) as u64, 0, 0), 0);
        assert_eq!(alu_result(Opcode::Slli, 3, 0, 4), 48);
        assert_eq!(alu_result(Opcode::Srai, (-16i64) as u64, 0, 2) as i64, -4);
        assert_eq!(alu_result(Opcode::Mul, 7, 6, 0), 42);
    }

    #[test]
    fn division_edge_cases() {
        assert_eq!(alu_result(Opcode::Div, 7, 2, 0), 3);
        assert_eq!(alu_result(Opcode::Div, 7, 0, 0), u64::MAX);
        assert_eq!(alu_result(Opcode::Rem, 7, 0, 0), 7);
        assert_eq!(alu_result(Opcode::Rem, 7, 2, 0), 1);
        // i64::MIN / -1 must not trap.
        let min = i64::MIN as u64;
        assert_eq!(alu_result(Opcode::Div, min, (-1i64) as u64, 0), min);
    }

    #[test]
    fn lui_shifts_by_12_and_sign_extends() {
        assert_eq!(alu_result(Opcode::Lui, 0, 0, 1), 0x1000);
        assert_eq!(alu_result(Opcode::Lui, 0, 0, -1) as i64, -0x1000);
    }

    #[test]
    fn float_ops_round_trip_bits() {
        let a = from_f64(1.5);
        let b = from_f64(2.25);
        assert_eq!(as_f64(alu_result(Opcode::FAdd, a, b, 0)), 3.75);
        assert_eq!(as_f64(alu_result(Opcode::FMul, a, b, 0)), 3.375);
        assert_eq!(as_f64(alu_result(Opcode::FDiv, b, a, 0)), 1.5);
        assert_eq!(as_f64(alu_result(Opcode::FSqrt, from_f64(9.0), 0, 0)), 3.0);
        assert_eq!(alu_result(Opcode::FLt, a, b, 0), 1);
        assert_eq!(alu_result(Opcode::F2I, from_f64(-2.7), 0, 0) as i64, -2);
        assert_eq!(as_f64(alu_result(Opcode::I2F, (-3i64) as u64, 0, 0)), -3.0);
    }

    #[test]
    fn branches() {
        assert!(branch_taken(Opcode::Beq, 4, 4));
        assert!(!branch_taken(Opcode::Bne, 4, 4));
        assert!(branch_taken(Opcode::Blt, (-1i64) as u64, 0));
        assert!(branch_taken(Opcode::Bge, 0, (-1i64) as u64));
    }

    #[test]
    fn effective_addr_wraps_signed() {
        assert_eq!(effective_addr(100, -8), 92);
        assert_eq!(effective_addr(0, 16), 16);
    }

    #[test]
    #[should_panic(expected = "non-computational")]
    fn alu_rejects_loads() {
        let _ = alu_result(Opcode::Ld, 0, 0, 0);
    }
}
