//! Functional (instruction-at-a-time) reference interpreter.
//!
//! This is the correctness oracle for the cycle-accurate simulator in
//! `smt-core`: both consume the same [`Program`] and the same
//! [`semantics`](crate::semantics), so any divergence in final architectural
//! state indicates a pipeline bug (lost writeback, bad forwarding, squash
//! leak, …). The interpreter steps threads round-robin, which is a legal
//! interleaving of the paper's parallel model because kernels only
//! communicate through the explicit `WAIT`/`POST` primitives.

use std::fmt;

use crate::insn::Instruction;
use crate::op::Opcode;
use crate::program::Program;
use crate::semantics::{alu_result, branch_taken, effective_addr, Value};
use crate::{window_size, WORD_BYTES};

/// Error raised during functional execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InterpError {
    /// A load/store touched memory outside the data image.
    OutOfBounds {
        /// Faulting byte address.
        addr: u64,
        /// Thread that faulted.
        tid: usize,
        /// Program counter of the faulting instruction.
        pc: usize,
    },
    /// A load/store address was not 8-byte aligned.
    Unaligned {
        /// Faulting byte address.
        addr: u64,
        /// Thread that faulted.
        tid: usize,
        /// Program counter of the faulting instruction.
        pc: usize,
    },
    /// Control flow left the text segment.
    PcOutOfRange {
        /// Thread whose PC escaped.
        tid: usize,
        /// The bad PC.
        pc: usize,
    },
    /// Every live thread is blocked on `WAIT` — the program can never finish.
    Deadlock,
    /// The step budget was exhausted before all threads halted.
    FuelExhausted {
        /// Steps executed before giving up.
        steps: u64,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::OutOfBounds { addr, tid, pc } => {
                write!(
                    f,
                    "thread {tid} at pc {pc}: access to {addr:#x} outside data memory"
                )
            }
            InterpError::Unaligned { addr, tid, pc } => {
                write!(f, "thread {tid} at pc {pc}: unaligned access to {addr:#x}")
            }
            InterpError::PcOutOfRange { tid, pc } => {
                write!(f, "thread {tid}: pc {pc} outside text segment")
            }
            InterpError::Deadlock => f.write_str("all live threads blocked on wait"),
            InterpError::FuelExhausted { steps } => {
                write!(f, "step budget exhausted after {steps} steps")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// Outcome of stepping one thread once.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Progress {
    /// An instruction retired.
    Stepped,
    /// The thread is blocked on an unsatisfied `WAIT`.
    Blocked,
    /// The thread has halted.
    Halted,
}

/// Summary statistics of a completed functional run.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct InterpStats {
    /// Instructions retired per thread (`WAIT` counted once, on success).
    pub retired: Vec<u64>,
    /// Total round-robin steps taken, including blocked polls.
    pub steps: u64,
}

impl InterpStats {
    /// Total instructions retired across all threads.
    #[must_use]
    pub fn total_retired(&self) -> u64 {
        self.retired.iter().sum()
    }
}

/// The functional interpreter.
///
/// See the [crate docs](crate) for a worked example.
#[derive(Clone, Debug)]
pub struct Interp<'p> {
    program: &'p Program,
    mem: Vec<u64>,
    regs: Vec<Value>,
    window: usize,
    pcs: Vec<usize>,
    halted: Vec<bool>,
    retired: Vec<u64>,
    fuel: u64,
}

/// Default step budget: generous for every workload in the suite while still
/// catching runaway programs in well under a second.
pub const DEFAULT_FUEL: u64 = 200_000_000;

impl<'p> Interp<'p> {
    /// Creates an interpreter with `n_threads` resident threads, all entering
    /// at [`Program::entry`] with `tid`/`nthreads` seeded.
    ///
    /// # Panics
    ///
    /// Panics if `n_threads` is outside `1..=`[`crate::MAX_THREADS`].
    #[must_use]
    pub fn new(program: &'p Program, n_threads: usize) -> Self {
        let window = window_size(n_threads);
        let mut regs = vec![0u64; window * n_threads];
        for tid in 0..n_threads {
            regs[tid * window] = tid as u64;
            regs[tid * window + 1] = n_threads as u64;
        }
        Interp {
            program,
            mem: program.data().to_words(),
            regs,
            window,
            pcs: vec![program.entry(); n_threads],
            halted: vec![false; n_threads],
            retired: vec![0; n_threads],
            fuel: DEFAULT_FUEL,
        }
    }

    /// Replaces the step budget used by [`run`](Self::run).
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Number of resident threads.
    #[must_use]
    pub fn n_threads(&self) -> usize {
        self.pcs.len()
    }

    /// Register `r` of thread `tid`.
    #[must_use]
    pub fn reg(&self, tid: usize, r: crate::Reg) -> Value {
        assert!(
            r.index() < self.window,
            "register {r} outside the thread window"
        );
        self.regs[tid * self.window + r.index()]
    }

    /// The entire physical register file (thread windows concatenated).
    #[must_use]
    pub fn reg_file(&self) -> &[Value] {
        &self.regs
    }

    /// Data memory as words.
    #[must_use]
    pub fn mem_words(&self) -> &[u64] {
        &self.mem
    }

    /// Reads the word at byte address `addr` (test convenience).
    ///
    /// # Panics
    ///
    /// Panics on unaligned or out-of-bounds addresses.
    #[must_use]
    pub fn load_word(&self, addr: u64) -> u64 {
        assert_eq!(addr % WORD_BYTES, 0, "unaligned address {addr:#x}");
        self.mem[(addr / WORD_BYTES) as usize]
    }

    /// Whether thread `tid` has executed `halt`.
    #[must_use]
    pub fn is_halted(&self, tid: usize) -> bool {
        self.halted[tid]
    }

    /// Current program counter of thread `tid` — the pc of the next
    /// instruction [`step_thread`](Self::step_thread) would execute.
    ///
    /// Lockstep co-simulation drivers compare this against the pc of each
    /// architecturally retiring instruction to catch control-flow
    /// divergence at the first wrong-path commit.
    #[must_use]
    pub fn thread_pc(&self, tid: usize) -> usize {
        self.pcs[tid]
    }

    /// Instructions retired so far, per thread (`WAIT` counted once, on
    /// success — blocked polls do not count).
    #[must_use]
    pub fn retired_counts(&self) -> &[u64] {
        &self.retired
    }

    /// Retires the `WAIT` at thread `tid`'s current pc as satisfied,
    /// regardless of the flag's current value in *this* interpreter's
    /// memory.
    ///
    /// Lockstep co-simulation needs this escape hatch: in the cycle-level
    /// machine a `POST` applies its memory increment at writeback but
    /// retires when its block commits, and under flexible commit the
    /// *waiting* thread's block may legally commit first. Replaying the
    /// commit stream then reaches a satisfied `WAIT` before the increment
    /// has been replayed. The wait's only architectural effect is advancing
    /// the pc, so accepting the machine's observation is sound; the
    /// increment itself is still checked when the `POST` retires.
    ///
    /// # Panics
    ///
    /// Panics if the instruction at the thread's pc is not `WAIT` — callers
    /// must only use this to resolve a genuine blocked-wait disagreement.
    pub fn retire_wait_satisfied(&mut self, tid: usize) {
        let pc = self.pcs[tid];
        let op = self.program.fetch(pc).map(|i| i.op);
        assert_eq!(
            op,
            Some(Opcode::Wait),
            "retire_wait_satisfied: thread {tid} pc {pc} is not a WAIT"
        );
        self.pcs[tid] = pc + 1;
        self.retired[tid] += 1;
    }

    /// Whether all threads have halted.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.halted.iter().all(|&h| h)
    }

    fn mem_index(&self, addr: u64, tid: usize, pc: usize) -> Result<usize, InterpError> {
        if !addr.is_multiple_of(WORD_BYTES) {
            return Err(InterpError::Unaligned { addr, tid, pc });
        }
        let idx = (addr / WORD_BYTES) as usize;
        if idx >= self.mem.len() {
            return Err(InterpError::OutOfBounds { addr, tid, pc });
        }
        Ok(idx)
    }

    fn read_reg(&self, tid: usize, r: crate::Reg) -> Value {
        self.regs[tid * self.window + r.index()]
    }

    fn write_reg(&mut self, tid: usize, r: crate::Reg, v: Value) {
        self.regs[tid * self.window + r.index()] = v;
    }

    /// Executes one instruction (or poll) on thread `tid`.
    ///
    /// # Errors
    ///
    /// Memory faults and PC escapes; see [`InterpError`].
    pub fn step_thread(&mut self, tid: usize) -> Result<Progress, InterpError> {
        if self.halted[tid] {
            return Ok(Progress::Halted);
        }
        let pc = self.pcs[tid];
        let insn: Instruction = *self
            .program
            .fetch(pc)
            .ok_or(InterpError::PcOutOfRange { tid, pc })?;
        let a = if insn.op.reads_rs1() {
            self.read_reg(tid, insn.rs1)
        } else {
            0
        };
        let b = if insn.op.reads_rs2() {
            self.read_reg(tid, insn.rs2)
        } else {
            0
        };
        match insn.op {
            Opcode::Ld => {
                let addr = effective_addr(a, insn.imm);
                let idx = self.mem_index(addr, tid, pc)?;
                let v = self.mem[idx];
                self.write_reg(tid, insn.rd, v);
                self.pcs[tid] = pc + 1;
            }
            Opcode::Sd => {
                let addr = effective_addr(a, insn.imm);
                let idx = self.mem_index(addr, tid, pc)?;
                self.mem[idx] = b;
                self.pcs[tid] = pc + 1;
            }
            Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge => {
                self.pcs[tid] = if branch_taken(insn.op, a, b) {
                    insn.imm as usize
                } else {
                    pc + 1
                };
            }
            Opcode::J => {
                self.pcs[tid] = insn.imm as usize;
            }
            Opcode::Halt => {
                self.halted[tid] = true;
                self.retired[tid] += 1;
                return Ok(Progress::Halted);
            }
            Opcode::Wait => {
                let idx = self.mem_index(a, tid, pc)?;
                if (self.mem[idx] as i64) >= (b as i64) {
                    self.pcs[tid] = pc + 1;
                } else {
                    return Ok(Progress::Blocked);
                }
            }
            Opcode::Post => {
                let idx = self.mem_index(a, tid, pc)?;
                self.mem[idx] = self.mem[idx].wrapping_add(1);
                self.pcs[tid] = pc + 1;
            }
            _ => {
                let v = alu_result(insn.op, a, b, insn.imm);
                if let Some(rd) = insn.dest() {
                    self.write_reg(tid, rd, v);
                }
                self.pcs[tid] = pc + 1;
            }
        }
        self.retired[tid] += 1;
        Ok(Progress::Stepped)
    }

    /// Runs all threads round-robin to completion.
    ///
    /// # Errors
    ///
    /// Propagates memory faults, and reports [`InterpError::Deadlock`] if
    /// every live thread is simultaneously blocked, or
    /// [`InterpError::FuelExhausted`] if the budget runs out.
    pub fn run(&mut self) -> Result<InterpStats, InterpError> {
        let n = self.n_threads();
        let mut steps: u64 = 0;
        while !self.finished() {
            let mut any_progress = false;
            let mut any_live = false;
            for tid in 0..n {
                if self.halted[tid] {
                    continue;
                }
                any_live = true;
                steps += 1;
                if steps > self.fuel {
                    return Err(InterpError::FuelExhausted { steps });
                }
                match self.step_thread(tid)? {
                    Progress::Stepped | Progress::Halted => any_progress = true,
                    Progress::Blocked => {}
                }
            }
            if any_live && !any_progress {
                return Err(InterpError::Deadlock);
            }
        }
        Ok(InterpStats {
            retired: self.retired.clone(),
            steps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn run(program: &Program, n: usize) -> Interp<'_> {
        let mut i = Interp::new(program, n);
        i.run().unwrap();
        i
    }

    #[test]
    fn threads_see_their_own_tid() {
        let mut b = ProgramBuilder::new();
        let out = b.alloc_zeroed(6 * 8);
        let addr = b.reg();
        b.slli(addr, b.tid_reg(), 3);
        b.addi(addr, addr, out as i32);
        b.sd(b.tid_reg(), addr, 0);
        b.halt();
        let p = b.build(3).unwrap();
        let i = run(&p, 3);
        for tid in 0..3 {
            assert_eq!(i.load_word(out + tid * 8), tid);
        }
    }

    #[test]
    fn loop_sums_integers() {
        // sum = 1 + 2 + … + 10, single thread
        let mut b = ProgramBuilder::new();
        let out = b.alloc_zeroed(8);
        let [sum, i, limit, addr] = b.regs();
        b.li(sum, 0);
        b.li(i, 1);
        b.li(limit, 11);
        let top = b.label();
        b.bind(top);
        b.add(sum, sum, i);
        b.addi(i, i, 1);
        b.blt(i, limit, top);
        b.li(addr, out as i64);
        b.sd(sum, addr, 0);
        b.halt();
        let p = b.build(1).unwrap();
        let interp = run(&p, 1);
        assert_eq!(interp.load_word(out), 55);
    }

    #[test]
    fn wait_post_synchronize_two_threads() {
        // Thread 0 writes 42 then posts; thread 1 waits then copies.
        let mut b = ProgramBuilder::new();
        let flag = b.alloc_zeroed(8);
        let slot = b.alloc_zeroed(8);
        let out = b.alloc_zeroed(8);
        let [fl, sl, ou, v, one, zero] = b.regs();
        b.li(fl, flag as i64);
        b.li(sl, slot as i64);
        b.li(ou, out as i64);
        b.li(one, 1);
        b.li(zero, 0);
        let reader = b.label();
        b.bne(b.tid_reg(), zero, reader);
        // writer (tid 0)
        b.li(v, 42);
        b.sd(v, sl, 0);
        b.post(fl);
        b.halt();
        // reader (tid 1)
        b.bind(reader);
        b.wait(fl, one);
        b.ld(v, sl, 0);
        b.sd(v, ou, 0);
        b.halt();
        let p = b.build(2).unwrap();
        let interp = run(&p, 2);
        assert_eq!(interp.load_word(out), 42);
    }

    #[test]
    fn deadlock_is_detected() {
        let mut b = ProgramBuilder::new();
        let flag = b.alloc_zeroed(8);
        let [fl, target] = b.regs();
        b.li(fl, flag as i64);
        b.li(target, 1);
        b.wait(fl, target); // nobody ever posts
        b.halt();
        let p = b.build(2).unwrap();
        let mut interp = Interp::new(&p, 2);
        assert_eq!(interp.run(), Err(InterpError::Deadlock));
    }

    #[test]
    fn fuel_exhaustion_is_detected() {
        let mut b = ProgramBuilder::new();
        let top = b.named_label("spin");
        b.j(top);
        b.halt();
        let p = b.build(1).unwrap();
        let mut interp = Interp::new(&p, 1).with_fuel(1000);
        assert!(matches!(
            interp.run(),
            Err(InterpError::FuelExhausted { .. })
        ));
    }

    #[test]
    fn out_of_bounds_store_faults() {
        let mut b = ProgramBuilder::new();
        let r = b.reg();
        b.li(r, 1 << 40);
        b.sd(r, r, 0);
        b.halt();
        let p = b.build(1).unwrap();
        let mut interp = Interp::new(&p, 1);
        assert!(matches!(
            interp.run(),
            Err(InterpError::OutOfBounds { tid: 0, .. })
        ));
    }

    #[test]
    fn unaligned_load_faults() {
        let mut b = ProgramBuilder::new();
        let _buf = b.alloc_zeroed(16);
        let r = b.reg();
        b.li(r, (crate::program::DATA_BASE + 4) as i64);
        b.ld(r, r, 0);
        b.halt();
        let p = b.build(1).unwrap();
        let mut interp = Interp::new(&p, 1);
        assert!(matches!(interp.run(), Err(InterpError::Unaligned { .. })));
    }

    #[test]
    fn retired_counts_are_tracked_per_thread() {
        let mut b = ProgramBuilder::new();
        b.nop();
        b.nop();
        b.halt();
        let p = b.build(2).unwrap();
        let mut interp = Interp::new(&p, 2);
        let stats = interp.run().unwrap();
        assert_eq!(stats.retired, vec![3, 3]);
        assert_eq!(stats.total_retired(), 6);
    }

    #[test]
    fn lockstep_single_step_api() {
        let mut b = ProgramBuilder::new();
        let flag = b.alloc_zeroed(8);
        let [fl, one, v] = b.regs();
        b.li(fl, flag as i64);
        b.li(one, 1);
        b.wait(fl, one); // nobody posts: blocked until force-retired
        b.addi(v, v, 5);
        b.halt();
        let p = b.build(1).unwrap();
        let mut i = Interp::new(&p, 1);
        // Step to the blocked WAIT.
        loop {
            let pc = i.thread_pc(0);
            match i.step_thread(0).unwrap() {
                Progress::Stepped => assert_ne!(i.thread_pc(0), pc, "pc advances"),
                Progress::Blocked => {
                    assert_eq!(i.thread_pc(0), pc, "blocked poll leaves the pc");
                    break;
                }
                Progress::Halted => panic!("halted before the WAIT"),
            }
        }
        let retired_before = i.retired_counts()[0];
        let wait_pc = i.thread_pc(0);
        i.retire_wait_satisfied(0);
        assert_eq!(i.thread_pc(0), wait_pc + 1);
        assert_eq!(i.retired_counts()[0], retired_before + 1);
        assert_eq!(i.step_thread(0).unwrap(), Progress::Stepped);
        assert_eq!(i.reg(0, v), 5);
        assert_eq!(i.step_thread(0).unwrap(), Progress::Halted);
    }

    #[test]
    #[should_panic(expected = "is not a WAIT")]
    fn retire_wait_satisfied_rejects_non_wait() {
        let mut b = ProgramBuilder::new();
        b.nop();
        b.halt();
        let p = b.build(1).unwrap();
        let mut i = Interp::new(&p, 1);
        i.retire_wait_satisfied(0);
    }

    #[test]
    fn pc_escape_is_reported() {
        let mut b = ProgramBuilder::new();
        b.nop(); // falls off the end
        let p = b.build(1).unwrap();
        let mut interp = Interp::new(&p, 1);
        assert_eq!(
            interp.run(),
            Err(InterpError::PcOutOfRange { tid: 0, pc: 1 })
        );
    }
}
