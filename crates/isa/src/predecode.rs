//! Predecoded instructions: every per-opcode property the pipeline needs,
//! computed once at program construction.
//!
//! The cycle simulator in `smt-core` touches each resident instruction many
//! times per simulated cycle (fetch, decode rename, issue selection, wakeup,
//! commit). Re-deriving operand roles and unit classes from the
//! [`Instruction`] accessors on every touch re-runs the same format match
//! over and over; at simulation rates of millions of cycles per second that
//! dispatch shows up as a top-line cost. [`DecodedInsn`] flattens the
//! results of those accessors — destination, read sources, functional-unit
//! class, and the control/memory/synchronization predicates — into a dense
//! copyable record that [`Program`](crate::program::Program) builds once per
//! instruction and the simulator copies around by value.
//!
//! The contract, pinned by a property test over every opcode: each field
//! equals the corresponding [`Instruction`]/[`Opcode`] accessor. The raw
//! instruction is recoverable via [`DecodedInsn::to_instruction`] up to
//! fields its format does not use.

use std::fmt;

use crate::insn::Instruction;
use crate::op::{FuClass, Opcode};
use crate::reg::Reg;

/// Predicate bits precomputed from the opcode (see the `flag` accessors).
mod flag {
    pub const CONTROL: u8 = 1 << 0;
    pub const COND_BRANCH: u8 = 1 << 1;
    pub const CSWITCH: u8 = 1 << 2;
    pub const MEM: u8 = 1 << 3;
    pub const SYNC: u8 = 1 << 4;
    pub const MEMSYNC: u8 = 1 << 5;
}

/// One predecoded instruction: the [`Instruction`] accessors, flattened.
///
/// ```
/// use smt_isa::{DecodedInsn, FuClass, Instruction, Opcode, Reg};
///
/// let sd = Instruction::store(Reg::new(4), Reg::new(2), 8);
/// let d = DecodedInsn::new(sd);
/// assert_eq!(d.dest, sd.dest());
/// assert_eq!(d.srcs, sd.sources());
/// assert_eq!(d.fu, FuClass::Store);
/// assert!(d.is_memsync() && !d.is_control());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodedInsn {
    /// Operation.
    pub op: Opcode,
    /// Functional-unit class ([`Opcode::fu_class`]).
    pub fu: FuClass,
    /// Destination register, if the opcode writes one ([`Instruction::dest`]).
    pub dest: Option<Reg>,
    /// Source registers actually read ([`Instruction::sources`]).
    pub srcs: [Option<Reg>; 2],
    /// Immediate (ALU immediate, byte displacement, or absolute target).
    pub imm: i32,
    flags: u8,
}

impl DecodedInsn {
    /// Predecodes one instruction.
    #[must_use]
    pub fn new(insn: Instruction) -> Self {
        let op = insn.op;
        let fu = op.fu_class();
        let mut flags = 0;
        let mut set = |cond: bool, bit: u8| {
            if cond {
                flags |= bit;
            }
        };
        set(op.is_control(), flag::CONTROL);
        set(op.is_cond_branch(), flag::COND_BRANCH);
        set(op.triggers_cswitch(), flag::CSWITCH);
        set(op.is_mem(), flag::MEM);
        set(op.is_sync(), flag::SYNC);
        set(matches!(fu, FuClass::Store | FuClass::Sync), flag::MEMSYNC);
        DecodedInsn {
            op,
            fu,
            dest: insn.dest(),
            srcs: insn.sources(),
            imm: insn.imm,
            flags,
        }
    }

    /// Whether this is a control transfer ([`Opcode::is_control`]).
    #[must_use]
    pub fn is_control(&self) -> bool {
        self.flags & flag::CONTROL != 0
    }

    /// Whether this is a conditional branch ([`Opcode::is_cond_branch`]).
    #[must_use]
    pub fn is_cond_branch(&self) -> bool {
        self.flags & flag::COND_BRANCH != 0
    }

    /// Whether decode triggers a Conditional-Switch context switch
    /// ([`Opcode::triggers_cswitch`]).
    #[must_use]
    pub fn triggers_cswitch(&self) -> bool {
        self.flags & flag::CSWITCH != 0
    }

    /// Whether the opcode touches data memory ([`Opcode::is_mem`]).
    #[must_use]
    pub fn is_mem(&self) -> bool {
        self.flags & flag::MEM != 0
    }

    /// Whether this is a synchronization primitive ([`Opcode::is_sync`]).
    #[must_use]
    pub fn is_sync(&self) -> bool {
        self.flags & flag::SYNC != 0
    }

    /// Whether the entry participates in the per-thread store/sync ordering
    /// queues (executes on the store or sync unit).
    #[must_use]
    pub fn is_memsync(&self) -> bool {
        self.flags & flag::MEMSYNC != 0
    }

    /// Reconstructs an [`Instruction`] with the same observable fields.
    /// Register fields the format does not use come back as their defaults,
    /// so the round trip is exact up to [`Instruction::dest`]/
    /// [`Instruction::sources`]/`imm`/`op` — everything the simulators read.
    #[must_use]
    pub fn to_instruction(&self) -> Instruction {
        // A store reads (base, data) as (rs1, rs2); every other two-source
        // format also maps srcs positionally onto (rs1, rs2).
        Instruction {
            op: self.op,
            rd: self.dest.unwrap_or_default(),
            rs1: self.srcs[0].unwrap_or_default(),
            rs2: self.srcs[1].unwrap_or_default(),
            imm: self.imm,
        }
    }
}

impl fmt::Display for DecodedInsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.to_instruction().fmt(f)
    }
}

/// Predecodes a text segment.
#[must_use]
pub fn predecode(text: &[Instruction]) -> Vec<DecodedInsn> {
    text.iter().copied().map(DecodedInsn::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_match_opcode_predicates_for_every_opcode() {
        for &op in Opcode::ALL {
            let d = DecodedInsn::new(Instruction {
                op,
                ..Instruction::NOP
            });
            assert_eq!(d.is_control(), op.is_control(), "{op}");
            assert_eq!(d.is_cond_branch(), op.is_cond_branch(), "{op}");
            assert_eq!(d.triggers_cswitch(), op.triggers_cswitch(), "{op}");
            assert_eq!(d.is_mem(), op.is_mem(), "{op}");
            assert_eq!(d.is_sync(), op.is_sync(), "{op}");
            assert_eq!(
                d.is_memsync(),
                matches!(op.fu_class(), FuClass::Store | FuClass::Sync),
                "{op}"
            );
            assert_eq!(d.fu, op.fu_class(), "{op}");
        }
    }

    #[test]
    fn display_matches_the_raw_instruction() {
        let r = |i| Reg::new(i);
        for insn in [
            Instruction::r3(Opcode::Add, r(3), r(1), r(2)),
            Instruction::load(r(4), r(2), 8),
            Instruction::store(r(4), r(2), -8),
            Instruction::branch(Opcode::Beq, r(1), r(2), 7),
            Instruction::jump(3),
            Instruction::i1(Opcode::Lui, r(5), 10),
            Instruction::unary(Opcode::FNeg, r(5), r(6)),
            Instruction::wait(r(2), r(3)),
            Instruction::post(r(2)),
            Instruction::halt(),
            Instruction::NOP,
        ] {
            assert_eq!(DecodedInsn::new(insn).to_string(), insn.to_string());
        }
    }
}
