//! Property test for the predecode layer: for every opcode and randomized
//! operand assignment, the [`DecodedInsn`] fields equal the corresponding
//! [`Instruction`]/[`Opcode`] accessor values, and the predecoded table a
//! [`Program`] builds tracks its text segment element-for-element.

use smt_isa::op::Format;
use smt_isa::program::{DataImage, Program};
use smt_isa::{DecodedInsn, FuClass, Instruction, Opcode, Reg};
use smt_testkit::{cases, Rng};

/// An arbitrary instruction whose immediate is valid for its format at the
/// given PC (mirrors the generator in `prop_roundtrip.rs`).
fn random_insn(rng: &mut Rng, pc: u32) -> Instruction {
    let op = rng.pick_copy(Opcode::ALL);
    let rd = Reg::new(rng.below(128) as u8);
    let rs1 = Reg::new(rng.below(128) as u8);
    let rs2 = Reg::new(rng.below(128) as u8);
    let mut clamp = |bits: u32, rel_to_pc: bool| {
        let min = -(1i64 << (bits - 1));
        let max = (1i64 << (bits - 1)) - 1;
        let v = rng.range_i64(min, max + 1);
        if rel_to_pc {
            (v + i64::from(pc)) as i32
        } else {
            v as i32
        }
    };
    let imm = match op.format() {
        Format::R3 | Format::U | Format::S2 | Format::S1 | Format::None => 0,
        Format::I2 | Format::Mem | Format::MemStore => clamp(12, false),
        Format::Branch => clamp(12, true),
        Format::I1 => clamp(19, false),
        Format::Jump => clamp(26, true),
    };
    Instruction {
        op,
        rd,
        rs1,
        rs2,
        imm,
    }
}

/// Every predecoded field must agree with the accessor it caches.
fn assert_matches_accessors(d: &DecodedInsn, insn: &Instruction) {
    let op = insn.op;
    assert_eq!(d.op, op, "{insn}");
    assert_eq!(d.fu, op.fu_class(), "{insn}");
    assert_eq!(d.dest, insn.dest(), "{insn}");
    assert_eq!(d.srcs, insn.sources(), "{insn}");
    assert_eq!(d.imm, insn.imm, "{insn}");
    assert_eq!(d.is_control(), op.is_control(), "{insn}");
    assert_eq!(d.is_cond_branch(), op.is_cond_branch(), "{insn}");
    assert_eq!(d.triggers_cswitch(), op.triggers_cswitch(), "{insn}");
    assert_eq!(d.is_mem(), op.is_mem(), "{insn}");
    assert_eq!(d.is_sync(), op.is_sync(), "{insn}");
    assert_eq!(
        d.is_memsync(),
        matches!(op.fu_class(), FuClass::Store | FuClass::Sync),
        "{insn}"
    );
}

#[test]
fn predecode_equals_accessors_for_random_instructions() {
    cases(512, |rng| {
        let pc = rng.below(100_000) as u32;
        let insn = random_insn(rng, pc);
        assert_matches_accessors(&DecodedInsn::new(insn), &insn);
    });
}

#[test]
fn predecode_covers_every_opcode_with_every_register_role() {
    // Deterministic sweep: every opcode with distinct registers in each slot,
    // so a swapped source or dropped destination cannot hide behind equal
    // register numbers.
    for &op in Opcode::ALL {
        let insn = Instruction {
            op,
            rd: Reg::new(10),
            rs1: Reg::new(20),
            rs2: Reg::new(30),
            imm: 0,
        };
        assert_matches_accessors(&DecodedInsn::new(insn), &insn);
    }
}

#[test]
fn program_predecode_table_tracks_text_elementwise() {
    cases(64, |rng| {
        let len = rng.range_usize(1, 64);
        let text: Vec<Instruction> = (0..len).map(|pc| random_insn(rng, pc as u32)).collect();
        let program = Program::new(text, 0, DataImage::default());
        assert_eq!(program.decoded().len(), program.text().len());
        for (insn, d) in program.text().iter().zip(program.decoded()) {
            assert_matches_accessors(d, insn);
        }
        for pc in 0..len {
            assert_eq!(
                program.fetch_decoded(pc).copied(),
                program.fetch(pc).copied().map(DecodedInsn::new)
            );
        }
    });
}
