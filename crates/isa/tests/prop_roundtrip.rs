//! Property tests for the ISA layer: binary encode/decode is lossless for
//! every representable instruction, and the assembler round-trips through
//! the disassembler. Randomized via the repo-local deterministic generator
//! (`smt-testkit`) — every failure reproduces from the printed seed.

use smt_isa::encode::{decode, encode};
use smt_isa::op::Format;
use smt_isa::program::{DataImage, Program};
use smt_isa::{Instruction, Opcode, Reg};
use smt_testkit::{cases, Rng};

/// An arbitrary instruction whose immediate is valid for its format at the
/// given PC.
fn random_insn(rng: &mut Rng, pc: u32) -> Instruction {
    let op = rng.pick_copy(Opcode::ALL);
    let rd = Reg::new(rng.below(128) as u8);
    let rs1 = Reg::new(rng.below(128) as u8);
    let rs2 = Reg::new(rng.below(128) as u8);
    let mut clamp = |bits: u32, rel_to_pc: bool| {
        let min = -(1i64 << (bits - 1));
        let max = (1i64 << (bits - 1)) - 1;
        let v = rng.range_i64(min, max + 1);
        if rel_to_pc {
            // Keep the absolute target representable after the PC-relative
            // conversion.
            (v + i64::from(pc)) as i32
        } else {
            v as i32
        }
    };
    let imm = match op.format() {
        Format::R3 | Format::U | Format::S2 | Format::S1 | Format::None => 0,
        Format::I2 | Format::Mem | Format::MemStore => clamp(12, false),
        Format::Branch => clamp(12, true),
        Format::I1 => clamp(19, false),
        Format::Jump => clamp(26, true),
    };
    Instruction {
        op,
        rd,
        rs1,
        rs2,
        imm,
    }
}

#[test]
fn encode_decode_is_lossless() {
    cases(512, |rng| {
        let pc = rng.below(100_000) as u32;
        let insn = random_insn(rng, pc);
        let word = encode(&insn, pc).expect("generator produces encodable instructions");
        let back = decode(word, pc).expect("encoded words decode");
        // Fields unused by the format are normalized by decode; compare the
        // semantically meaningful projection.
        assert_eq!(back.op, insn.op);
        if insn.op.has_dest() {
            assert_eq!(back.rd, insn.rd);
        }
        if insn.op.reads_rs1() {
            assert_eq!(back.rs1, insn.rs1);
        }
        if insn.op.reads_rs2() {
            assert_eq!(back.rs2, insn.rs2);
        }
        assert_eq!(back.imm, insn.imm, "{insn:?}");
    });
}

#[test]
fn random_instruction_streams_roundtrip_as_programs() {
    cases(128, |rng| {
        let len = rng.range_usize(1, 64);
        let text: Vec<Instruction> = (0..len).map(|pc| random_insn(rng, pc as u32)).collect();
        let program = Program::new(text, 0, DataImage::default());
        let words = program.encode_text().expect("encodable");
        let back = Program::decode_text(&words, 0, DataImage::default()).expect("decodable");
        for (a, b) in program.text().iter().zip(back.text()) {
            assert_eq!(a.op, b.op);
            assert_eq!(a.imm, b.imm);
        }
    });
}

#[test]
fn disassembly_reassembles_identically() {
    cases(128, |rng| {
        // Restrict to a stream the assembler can print and re-parse
        // (every opcode, default-ish operands, in-range targets).
        let len = rng.range_usize(1, 40);
        let text: Vec<Instruction> = (0..len)
            .map(|pc| {
                let insn = random_insn(rng, pc as u32);
                let insn = match insn.op.format() {
                    // Branch/jump targets must stay inside the program for
                    // reassembly of absolute indices.
                    Format::Branch | Format::Jump => Instruction {
                        imm: (insn.imm.unsigned_abs() as usize % len) as i32,
                        ..insn
                    },
                    _ => insn,
                };
                // Normalize fields the format doesn't use (the printer
                // omits them, so reassembly resets them to defaults).
                decode(encode(&insn, pc as u32).unwrap(), pc as u32).unwrap()
            })
            .collect();
        let program = Program::new(text, 0, DataImage::default());
        let dis = program.disassemble();
        let back = smt_isa::asm::assemble(&dis, DataImage::default())
            .unwrap_or_else(|e| panic!("reassembly failed: {e}\n{dis}"));
        assert_eq!(program.text(), back.text());
    });
}
