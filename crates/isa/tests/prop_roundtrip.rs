//! Property tests for the ISA layer: binary encode/decode is lossless for
//! every representable instruction, and the assembler round-trips through
//! the disassembler.

use proptest::prelude::*;
use proptest::strategy::ValueTree as _;

use smt_isa::encode::{decode, encode};
use smt_isa::op::Format;
use smt_isa::program::{DataImage, Program};
use smt_isa::{Instruction, Opcode, Reg};

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u8..128).prop_map(Reg::new)
}

fn opcode_strategy() -> impl Strategy<Value = Opcode> {
    prop::sample::select(Opcode::ALL.to_vec())
}

/// An arbitrary instruction whose immediate is valid for its format at the
/// given PC.
fn insn_strategy(pc: u32) -> impl Strategy<Value = Instruction> {
    (opcode_strategy(), reg_strategy(), reg_strategy(), reg_strategy(), any::<i32>()).prop_map(
        move |(op, rd, rs1, rs2, raw_imm)| {
            let clamp = |bits: u32, rel_to_pc: bool| {
                let min = -(1i64 << (bits - 1));
                let max = (1i64 << (bits - 1)) - 1;
                let v = i64::from(raw_imm).rem_euclid(max - min + 1) + min;
                if rel_to_pc {
                    // Keep the absolute target representable after the
                    // PC-relative conversion.
                    (v + i64::from(pc)) as i32
                } else {
                    v as i32
                }
            };
            let imm = match op.format() {
                Format::R3 | Format::U | Format::S2 | Format::S1 | Format::None => 0,
                Format::I2 | Format::Mem | Format::MemStore => clamp(12, false),
                Format::Branch => clamp(12, true),
                Format::I1 => clamp(19, false),
                Format::Jump => clamp(26, true),
            };
            Instruction { op, rd, rs1, rs2, imm }
        },
    )
}

proptest! {
    #[test]
    fn encode_decode_is_lossless(pc in 0u32..100_000, seed in any::<i32>()) {
        let strategy = insn_strategy(pc);
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        // Derive a concrete instruction from the seed for reproducibility.
        let _ = seed;
        let insn = strategy.new_tree(&mut runner).unwrap().current();
        let word = encode(&insn, pc).expect("strategy produces encodable instructions");
        let back = decode(word, pc).expect("encoded words decode");
        // Fields unused by the format are normalized by decode; compare the
        // semantically meaningful projection.
        prop_assert_eq!(back.op, insn.op);
        if insn.op.has_dest() {
            prop_assert_eq!(back.rd, insn.rd);
        }
        if insn.op.reads_rs1() {
            prop_assert_eq!(back.rs1, insn.rs1);
        }
        if insn.op.reads_rs2() {
            prop_assert_eq!(back.rs2, insn.rs2);
        }
        prop_assert_eq!(back.imm, insn.imm);
    }

    #[test]
    fn random_instruction_streams_roundtrip_as_programs(
        len in 1usize..64,
        pcs in any::<u64>(),
    ) {
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let _ = pcs;
        let text: Vec<Instruction> = (0..len)
            .map(|pc| insn_strategy(pc as u32).new_tree(&mut runner).unwrap().current())
            .collect();
        let program = Program::new(text, 0, DataImage::default());
        let words = program.encode_text().expect("encodable");
        let back = Program::decode_text(&words, 0, DataImage::default()).expect("decodable");
        for (a, b) in program.text().iter().zip(back.text()) {
            prop_assert_eq!(a.op, b.op);
            prop_assert_eq!(a.imm, b.imm);
        }
    }

    #[test]
    fn disassembly_reassembles_identically(len in 1usize..40) {
        // Restrict to a stream the assembler can print and re-parse
        // (every opcode, default-ish operands, in-range targets).
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let text: Vec<Instruction> = (0..len)
            .map(|pc| {
                let insn = insn_strategy(pc as u32).new_tree(&mut runner).unwrap().current();
                let insn = match insn.op.format() {
                    // Branch/jump targets must stay inside the program for
                    // reassembly of absolute indices.
                    Format::Branch | Format::Jump => Instruction {
                        imm: (insn.imm.unsigned_abs() as usize % len) as i32,
                        ..insn
                    },
                    _ => insn,
                };
                // Normalize fields the format doesn't use (the printer
                // omits them, so reassembly resets them to defaults).
                decode(encode(&insn, pc as u32).unwrap(), pc as u32).unwrap()
            })
            .collect();
        let program = Program::new(text, 0, DataImage::default());
        let dis = program.disassemble();
        let back = smt_isa::asm::assemble(&dis, DataImage::default())
            .unwrap_or_else(|e| panic!("reassembly failed: {e}\n{dis}"));
        prop_assert_eq!(program.text(), back.text());
    }
}
