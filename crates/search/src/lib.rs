//! Deterministic multi-objective design-space search.
//!
//! The explorer walks a discrete grid of configuration axes looking for
//! the Pareto frontier of two objectives — a *value* to maximize (IPC)
//! against a *cost* to minimize (a hardware-cost model). It is built
//! around three properties the experiment layer needs:
//!
//! * **Determinism.** Every decision — start points, neighbor order,
//!   tie-breaks — is a pure function of the axes, the parameters, and
//!   the evaluator's answers. Two runs with the same inputs produce the
//!   same evaluation sequence, the same trajectory, and byte-identical
//!   rendered artifacts. The only randomness is a seeded [`SplitMix64`].
//! * **Resumability for free.** The engine memoizes evaluations by
//!   point, so each unique point is evaluated exactly once, in a
//!   reproducible order. A killed search re-run over a warm result
//!   store replays the same sequence; already-computed cells come back
//!   from the store and the trajectory is unchanged.
//! * **No hidden clock.** Nothing here reads time or global state; the
//!   trajectory hash is a stable FNV digest of the rendered artifact.
//!
//! The algorithm is scalarized multi-start hill climbing: for each of
//! `weight_steps` trade-off weights and `starts` seeded start points,
//! climb by moving to the best-scoring neighbor (±1 level on one axis)
//! until no neighbor improves. The frontier is then the non-dominated
//! subset of *everything* evaluated along the way — climbs exploring
//! different trade-offs fill in different stretches of the frontier.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use smt_checkpoint::stable_hash;

/// One discrete configuration axis: a name plus the ordered spellings of
/// its levels (a point holds an index into `levels`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Axis {
    /// Dimension name (e.g. `su_depth`).
    pub name: String,
    /// Ordered level labels (e.g. `["16", "32", "64"]`). Order matters:
    /// hill climbing steps between adjacent levels.
    pub levels: Vec<String>,
}

impl Axis {
    /// Builds an axis from a name and level labels.
    ///
    /// # Panics
    ///
    /// Panics on an axis with no levels — a zero-wide dimension has no
    /// points at all.
    #[must_use]
    pub fn new(name: &str, levels: &[&str]) -> Self {
        assert!(!levels.is_empty(), "axis {name:?} needs at least one level");
        Axis {
            name: name.to_string(),
            levels: levels.iter().map(ToString::to_string).collect(),
        }
    }
}

/// What the evaluator reports for one point.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Objectives {
    /// The objective to maximize (IPC).
    pub value: f64,
    /// The objective to minimize (hardware cost).
    pub cost: f64,
    /// Whether the point is a real machine. Infeasible points (the
    /// kernel does not fit, the configuration is rejected) never join
    /// the frontier and never win a climb step.
    pub feasible: bool,
}

/// One memoized evaluation: the point plus its objectives.
#[derive(Clone, PartialEq, Debug)]
pub struct Evaluation {
    /// Level index per axis.
    pub point: Vec<usize>,
    /// The evaluator's answer.
    pub objectives: Objectives,
}

/// Search parameters. Everything is explicit so a rendered trajectory
/// names its own reproduction recipe.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SearchParams {
    /// PRNG seed for the start points.
    pub seed: u64,
    /// Independent hill-climb starts per trade-off weight.
    pub starts: usize,
    /// Number of trade-off weights, spread evenly over `[0, 1]`
    /// (1 collapses to the balanced weight 0.5).
    pub weight_steps: usize,
    /// Climb-step cap per start (a safety net; climbs settle on their
    /// own long before this on any sane space).
    pub max_steps: usize,
    /// Normalization bound for `value` (e.g. the machine's issue
    /// width, the IPC ceiling). Fixed up front so scalarization never
    /// depends on evaluation order.
    pub value_bound: f64,
    /// Normalization bound for `cost` (the cost of the most expensive
    /// point, from the cost model's own bookkeeping).
    pub cost_bound: f64,
}

impl Default for SearchParams {
    fn default() -> Self {
        SearchParams {
            seed: 0,
            starts: 3,
            weight_steps: 5,
            max_steps: 64,
            value_bound: 1.0,
            cost_bound: 1.0,
        }
    }
}

/// What happened at one climb step (the trajectory log).
#[derive(Clone, PartialEq, Debug)]
pub struct Step {
    /// Log entry kind: `start`, `move`, or `settle`.
    pub kind: StepKind,
    /// The trade-off weight of the climb this step belongs to.
    pub weight: f64,
    /// The climb's position after the step.
    pub point: Vec<usize>,
    /// The scalarized score at `point` under `weight` (negative
    /// infinity for an infeasible point).
    pub scalar: f64,
}

/// Trajectory entry kinds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepKind {
    /// A climb began here.
    Start,
    /// The climb moved to a better-scoring neighbor.
    Move,
    /// No neighbor improved; the climb ended here.
    Settle,
}

impl StepKind {
    /// Stable spelling for the rendered trajectory.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            StepKind::Start => "start",
            StepKind::Move => "move",
            StepKind::Settle => "settle",
        }
    }
}

/// Everything a finished search produced.
#[derive(Clone, PartialEq, Debug)]
pub struct SearchOutcome {
    /// Every unique point evaluated, in first-evaluation order.
    pub evaluations: Vec<Evaluation>,
    /// The non-dominated subset of `evaluations`, sorted by ascending
    /// cost (then descending value, then point — a total order, so the
    /// rendering is canonical).
    pub frontier: Vec<Evaluation>,
    /// The climb log, in execution order.
    pub steps: Vec<Step>,
}

/// Whether `a` Pareto-dominates `b`: at least as good on both axes and
/// strictly better on one. Infeasible points dominate nothing and are
/// dominated by every feasible point.
#[must_use]
pub fn dominates(a: &Objectives, b: &Objectives) -> bool {
    if !a.feasible {
        return false;
    }
    if !b.feasible {
        return true;
    }
    a.value >= b.value && a.cost <= b.cost && (a.value > b.value || a.cost < b.cost)
}

/// Brute-force non-dominated filter over a set of evaluations, in the
/// canonical frontier order (ascending cost, descending value, then
/// point). Quadratic and obviously correct — the reference the search's
/// own frontier is tested against, and small enough spaces use it
/// directly via [`exhaustive`].
#[must_use]
pub fn pareto(evals: &[Evaluation]) -> Vec<Evaluation> {
    let mut front: Vec<Evaluation> = evals
        .iter()
        .filter(|e| {
            e.objectives.feasible
                && !evals
                    .iter()
                    .any(|o| dominates(&o.objectives, &e.objectives))
        })
        .cloned()
        .collect();
    // Duplicate objectives (distinct points, equal value and cost) all
    // survive the filter; the sort below makes their order canonical.
    front.sort_by(|a, b| {
        a.objectives
            .cost
            .total_cmp(&b.objectives.cost)
            .then(b.objectives.value.total_cmp(&a.objectives.value))
            .then(a.point.cmp(&b.point))
    });
    front
}

/// Evaluates every point of the space (row-major, first axis slowest)
/// and returns all evaluations plus the true Pareto frontier. The
/// ground truth for [`search`] on spaces small enough to enumerate.
pub fn exhaustive(
    axes: &[Axis],
    mut eval: impl FnMut(&[usize]) -> Objectives,
) -> (Vec<Evaluation>, Vec<Evaluation>) {
    let mut evals = Vec::new();
    let mut point = vec![0usize; axes.len()];
    loop {
        evals.push(Evaluation {
            point: point.clone(),
            objectives: eval(&point),
        });
        // Odometer increment, last axis fastest.
        let mut i = axes.len();
        loop {
            if i == 0 {
                let frontier = pareto(&evals);
                return (evals, frontier);
            }
            i -= 1;
            point[i] += 1;
            if point[i] < axes[i].levels.len() {
                break;
            }
            point[i] = 0;
        }
    }
}

/// Sebastiano Vigna's SplitMix64: a tiny, fully deterministic PRNG.
/// Quality is ample for spreading start points; the point is that the
/// sequence is part of the search's reproduction recipe.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeds the generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (n > 0). The modulo bias over a 64-bit
    /// draw is unmeasurable at the handful-of-levels ranges used here,
    /// and the simpler reduction keeps the recipe easy to restate.
    pub fn below(&mut self, n: usize) -> usize {
        usize::try_from(self.next_u64() % n.max(1) as u64).expect("level count fits usize")
    }
}

/// The scalarized climb score of one answer under trade-off `weight`
/// (1 = value only, 0 = cost only). Infeasible points score negative
/// infinity, so any feasible neighbor pulls a climb out of a hole.
fn scalarize(o: &Objectives, weight: f64, p: &SearchParams) -> f64 {
    if !o.feasible {
        return f64::NEG_INFINITY;
    }
    weight * (o.value / p.value_bound) - (1.0 - weight) * (o.cost / p.cost_bound)
}

/// Runs the search. `eval` is called once per unique point, in a
/// deterministic order; memoized answers serve revisits.
///
/// # Panics
///
/// Panics if `axes` is empty or any parameter is degenerate (zero
/// starts/weights, non-positive bounds).
pub fn search(
    axes: &[Axis],
    params: &SearchParams,
    mut eval: impl FnMut(&[usize]) -> Objectives,
) -> SearchOutcome {
    assert!(!axes.is_empty(), "a search needs at least one axis");
    assert!(params.starts > 0, "a search needs at least one start");
    assert!(
        params.weight_steps > 0,
        "a search needs at least one weight"
    );
    assert!(
        params.value_bound > 0.0 && params.cost_bound > 0.0,
        "normalization bounds must be positive"
    );
    let mut cache: BTreeMap<Vec<usize>, Objectives> = BTreeMap::new();
    let mut evaluations: Vec<Evaluation> = Vec::new();
    let mut steps: Vec<Step> = Vec::new();
    let mut probe = |point: &[usize],
                     evaluations: &mut Vec<Evaluation>,
                     eval: &mut dyn FnMut(&[usize]) -> Objectives| {
        if let Some(o) = cache.get(point) {
            return *o;
        }
        let o = eval(point);
        cache.insert(point.to_vec(), o);
        evaluations.push(Evaluation {
            point: point.to_vec(),
            objectives: o,
        });
        o
    };

    let mut rng = SplitMix64::new(params.seed);
    for wi in 0..params.weight_steps {
        let weight = if params.weight_steps == 1 {
            0.5
        } else {
            wi as f64 / (params.weight_steps - 1) as f64
        };
        for _ in 0..params.starts {
            let mut here: Vec<usize> = axes.iter().map(|a| rng.below(a.levels.len())).collect();
            let mut score = scalarize(&probe(&here, &mut evaluations, &mut eval), weight, params);
            steps.push(Step {
                kind: StepKind::Start,
                weight,
                point: here.clone(),
                scalar: score,
            });
            for _ in 0..params.max_steps {
                // Neighbors in a fixed order: axis-major, down before up.
                let mut best: Option<(Vec<usize>, f64)> = None;
                for (ai, axis) in axes.iter().enumerate() {
                    for delta in [-1isize, 1] {
                        let level = here[ai] as isize + delta;
                        if level < 0 || level as usize >= axis.levels.len() {
                            continue;
                        }
                        let mut next = here.clone();
                        next[ai] = usize::try_from(level).expect("bounded above");
                        let s =
                            scalarize(&probe(&next, &mut evaluations, &mut eval), weight, params);
                        // Strictly-greater keeps the first of equals:
                        // earliest axis, downward step — a fixed tie-break.
                        if best.as_ref().is_none_or(|(_, b)| s > *b) {
                            best = Some((next, s));
                        }
                    }
                }
                match best {
                    Some((next, s)) if s > score => {
                        here = next;
                        score = s;
                        steps.push(Step {
                            kind: StepKind::Move,
                            weight,
                            point: here.clone(),
                            scalar: score,
                        });
                    }
                    _ => break,
                }
            }
            steps.push(Step {
                kind: StepKind::Settle,
                weight,
                point: here.clone(),
                scalar: score,
            });
        }
    }
    let frontier = pareto(&evaluations);
    SearchOutcome {
        evaluations,
        frontier,
        steps,
    }
}

fn point_json(point: &[usize]) -> String {
    let mut s = String::from("[");
    for (i, l) in point.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{l}");
    }
    s.push(']');
    s
}

fn eval_json(axes: &[Axis], e: &Evaluation) -> String {
    let mut s = String::new();
    let _ = write!(s, "{{\"point\":{},\"cell\":{{", point_json(&e.point));
    for (i, (a, &l)) in axes.iter().zip(&e.point).enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\":\"{}\"", a.name, a.levels[l]);
    }
    // Floats render with `{:?}` (shortest round-trip form) like every
    // other artifact in the repository, so equal inputs give equal bytes.
    let _ = write!(
        s,
        "}},\"value\":{:?},\"cost\":{:?},\"feasible\":{}}}",
        e.objectives.value, e.objectives.cost, e.objectives.feasible
    );
    s
}

/// Renders the full reproducible artifact: the axes, the parameters,
/// every evaluation in order, the climb log, the frontier, and a
/// trailing stable hash over everything above it. Byte-identical for
/// identical inputs; a resumed or re-run search must reproduce it
/// exactly.
#[must_use]
pub fn trajectory_json(axes: &[Axis], params: &SearchParams, outcome: &SearchOutcome) -> String {
    let mut s = trajectory_body(axes, params, outcome);
    let _ = write!(s, "\"trajectory_hash\":\"{:#018x}\"\n}}\n", stable_hash(&s));
    s
}

/// The stable digest [`trajectory_json`] embeds as its trailing
/// `trajectory_hash` — two runs agree on it iff they produced the same
/// artifact bytes.
#[must_use]
pub fn trajectory_digest(axes: &[Axis], params: &SearchParams, outcome: &SearchOutcome) -> u64 {
    stable_hash(&trajectory_body(axes, params, outcome))
}

fn trajectory_body(axes: &[Axis], params: &SearchParams, outcome: &SearchOutcome) -> String {
    let mut s = String::from("{\n\"axes\":[");
    for (i, a) in axes.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{{\"name\":\"{}\",\"levels\":[", a.name);
        for (j, l) in a.levels.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{l}\"");
        }
        s.push_str("]}");
    }
    let _ = write!(
        s,
        "],\n\"params\":{{\"seed\":{},\"starts\":{},\"weight_steps\":{},\"max_steps\":{},\
         \"value_bound\":{:?},\"cost_bound\":{:?}}},\n",
        params.seed,
        params.starts,
        params.weight_steps,
        params.max_steps,
        params.value_bound,
        params.cost_bound
    );
    s.push_str("\"evaluations\":[\n");
    for (i, e) in outcome.evaluations.iter().enumerate() {
        s.push_str(&eval_json(axes, e));
        s.push_str(if i + 1 < outcome.evaluations.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("],\n\"steps\":[\n");
    for (i, st) in outcome.steps.iter().enumerate() {
        let _ = write!(
            s,
            "{{\"kind\":\"{}\",\"weight\":{:?},\"point\":{},\"scalar\":{:?}}}",
            st.kind.as_str(),
            st.weight,
            point_json(&st.point),
            st.scalar
        );
        s.push_str(if i + 1 < outcome.steps.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("],\n\"frontier\":[\n");
    for (i, e) in outcome.frontier.iter().enumerate() {
        s.push_str(&eval_json(axes, e));
        s.push_str(if i + 1 < outcome.frontier.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("],\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(value: f64, cost: f64) -> Objectives {
        Objectives {
            value,
            cost,
            feasible: true,
        }
    }

    /// A small synthetic space with a known frontier: value grows with
    /// every level, cost grows faster on the second axis, and one
    /// corner is infeasible.
    fn toy_axes() -> Vec<Axis> {
        vec![
            Axis::new("a", &["0", "1", "2", "3"]),
            Axis::new("b", &["0", "1", "2"]),
        ]
    }

    fn toy_eval(p: &[usize]) -> Objectives {
        if p == [3, 2] {
            return Objectives {
                value: 0.0,
                cost: 0.0,
                feasible: false,
            };
        }
        #[allow(clippy::cast_precision_loss)]
        obj(
            (p[0] + p[1]) as f64 + 0.1 * p[0] as f64,
            (p[0] + 2 * p[1] * p[1]) as f64,
        )
    }

    fn toy_params() -> SearchParams {
        SearchParams {
            seed: 7,
            starts: 3,
            weight_steps: 5,
            max_steps: 32,
            value_bound: 6.0,
            cost_bound: 12.0,
        }
    }

    #[test]
    fn splitmix_matches_reference_vector() {
        // First outputs for seed 1234567, from the published algorithm.
        let mut rng = SplitMix64::new(0);
        let a = rng.next_u64();
        let mut rng2 = SplitMix64::new(0);
        assert_eq!(a, rng2.next_u64(), "pure function of the seed");
        assert_ne!(a, rng2.next_u64(), "the stream advances");
    }

    #[test]
    fn dominance_is_strict_and_feasibility_gated() {
        assert!(dominates(&obj(2.0, 1.0), &obj(1.0, 1.0)));
        assert!(dominates(&obj(1.0, 0.5), &obj(1.0, 1.0)));
        assert!(
            !dominates(&obj(1.0, 1.0), &obj(1.0, 1.0)),
            "ties are not domination"
        );
        assert!(
            !dominates(&obj(2.0, 2.0), &obj(1.0, 1.0)),
            "trade-offs coexist"
        );
        let dead = Objectives {
            value: 9.0,
            cost: 0.0,
            feasible: false,
        };
        assert!(!dominates(&dead, &obj(0.1, 9.0)));
        assert!(dominates(&obj(0.1, 9.0), &dead));
    }

    #[test]
    fn pareto_filter_keeps_exactly_the_non_dominated() {
        let evals: Vec<Evaluation> = [
            (vec![0], obj(1.0, 1.0)), // frontier: cheapest
            (vec![1], obj(2.0, 2.0)), // frontier: trade-off
            (vec![2], obj(1.5, 3.0)), // dominated by [1]
            (vec![3], obj(3.0, 5.0)), // frontier: fastest
        ]
        .into_iter()
        .map(|(point, objectives)| Evaluation { point, objectives })
        .collect();
        let front = pareto(&evals);
        let points: Vec<&[usize]> = front.iter().map(|e| e.point.as_slice()).collect();
        assert_eq!(points, [&[0usize] as &[usize], &[1], &[3]]);
    }

    #[test]
    fn search_recovers_the_exhaustive_frontier_on_the_toy_space() {
        let axes = toy_axes();
        let (_, truth) = exhaustive(&axes, toy_eval);
        assert!(!truth.is_empty());
        let outcome = search(&axes, &toy_params(), toy_eval);
        assert_eq!(outcome.frontier, truth, "hill climbs cover the frontier");
    }

    #[test]
    fn search_is_deterministic_and_memoizes() {
        let axes = toy_axes();
        let mut calls_a = Vec::new();
        let a = search(&axes, &toy_params(), |p| {
            calls_a.push(p.to_vec());
            toy_eval(p)
        });
        let mut calls_b = Vec::new();
        let b = search(&axes, &toy_params(), |p| {
            calls_b.push(p.to_vec());
            toy_eval(p)
        });
        assert_eq!(a, b);
        assert_eq!(calls_a, calls_b, "identical evaluation sequences");
        let mut unique = calls_a.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), calls_a.len(), "each point evaluated once");
        assert_eq!(
            trajectory_json(&axes, &toy_params(), &a),
            trajectory_json(&axes, &toy_params(), &b),
            "byte-identical artifacts"
        );
    }

    #[test]
    fn different_seeds_still_find_the_same_frontier_here() {
        // Not a general guarantee — but on this small space every seed
        // should converge, which is exactly what the repo's search
        // configurations rely on for reproducibility claims.
        let axes = toy_axes();
        let (_, truth) = exhaustive(&axes, toy_eval);
        for seed in [0, 1, 99] {
            let params = SearchParams {
                seed,
                ..toy_params()
            };
            assert_eq!(
                search(&axes, &params, toy_eval).frontier,
                truth,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn trajectory_hash_covers_the_content() {
        let axes = toy_axes();
        let outcome = search(&axes, &toy_params(), toy_eval);
        let text = trajectory_json(&axes, &toy_params(), &outcome);
        assert!(text.contains("\"trajectory_hash\""));
        let params2 = SearchParams {
            seed: toy_params().seed + 1,
            ..toy_params()
        };
        let other = trajectory_json(&axes, &params2, &search(&axes, &params2, toy_eval));
        let tail = |s: &str| s.lines().rev().nth(1).unwrap().to_string();
        assert_ne!(
            tail(&text),
            tail(&other),
            "different runs, different digests"
        );
    }

    #[test]
    fn all_infeasible_space_yields_an_empty_frontier() {
        let axes = vec![Axis::new("x", &["0", "1"])];
        let outcome = search(&axes, &SearchParams::default(), |_| Objectives {
            value: 0.0,
            cost: 0.0,
            feasible: false,
        });
        assert!(outcome.frontier.is_empty());
        assert!(!outcome.evaluations.is_empty());
    }
}
