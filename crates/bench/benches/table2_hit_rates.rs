//! Bench target regenerating the paper's table2_hit_rates.

fn main() {
    smt_bench::run_figure(
        "table2_hit_rates",
        smt_experiments::figures::table2_hit_rates,
    );
}
