//! Bench target regenerating the paper's fig14_commit_group2.

fn main() {
    smt_bench::run_figure(
        "fig14_commit_group2",
        smt_experiments::figures::fig14_commit_group2,
    );
}
