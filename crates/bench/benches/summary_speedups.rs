//! Bench target regenerating the paper's summary_speedups.

fn main() {
    smt_bench::run_figure(
        "summary_speedups",
        smt_experiments::figures::summary_speedups,
    );
}
