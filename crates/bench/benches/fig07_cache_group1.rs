//! Bench target regenerating the paper's fig07_cache_group1.

fn main() {
    smt_bench::run_figure(
        "fig07_cache_group1",
        smt_experiments::figures::fig07_cache_group1,
    );
}
