//! Bench target regenerating the ext_fetch_alignment table.

fn main() {
    smt_bench::run_figure(
        "ext_fetch_alignment",
        smt_experiments::figures::ext_fetch_alignment,
    );
}
