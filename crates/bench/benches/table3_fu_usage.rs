//! Bench target regenerating the paper's table3_fu_usage.

fn main() {
    smt_bench::run_figure("table3_fu_usage", smt_experiments::figures::table3_fu_usage);
}
