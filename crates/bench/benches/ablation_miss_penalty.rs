//! Bench target regenerating the ablation_miss_penalty table.

fn main() {
    smt_bench::run_figure(
        "ablation_miss_penalty",
        smt_experiments::figures::ablation_miss_penalty,
    );
}
