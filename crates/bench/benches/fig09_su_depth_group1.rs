//! Bench target regenerating the paper's fig09_su_depth_group1.

fn main() {
    smt_bench::run_figure(
        "fig09_su_depth_group1",
        smt_experiments::figures::fig09_su_depth_group1,
    );
}
