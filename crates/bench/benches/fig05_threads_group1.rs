//! Bench target regenerating the paper's fig05_threads_group1.

fn main() {
    smt_bench::run_figure(
        "fig05_threads_group1",
        smt_experiments::figures::fig05_threads_group1,
    );
}
