//! Bench target regenerating the ablation_bypass table.

fn main() {
    smt_bench::run_figure("ablation_bypass", smt_experiments::figures::ablation_bypass);
}
