//! Bench target regenerating the paper's fig06_threads_group2.

fn main() {
    smt_bench::run_figure(
        "fig06_threads_group2",
        smt_experiments::figures::fig06_threads_group2,
    );
}
