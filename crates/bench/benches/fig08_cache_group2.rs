//! Bench target regenerating the paper's fig08_cache_group2.

fn main() {
    smt_bench::run_figure(
        "fig08_cache_group2",
        smt_experiments::figures::fig08_cache_group2,
    );
}
