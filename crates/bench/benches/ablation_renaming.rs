//! Bench target regenerating the ablation_renaming table.

fn main() {
    smt_bench::run_figure(
        "ablation_renaming",
        smt_experiments::figures::ablation_renaming,
    );
}
