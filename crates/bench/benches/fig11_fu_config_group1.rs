//! Bench target regenerating the paper's fig11_fu_config_group1.

fn main() {
    smt_bench::run_figure(
        "fig11_fu_config_group1",
        smt_experiments::figures::fig11_fu_config_group1,
    );
}
