//! Bench target regenerating the paper's fig04_fetch_policy_group2.

fn main() {
    smt_bench::run_figure(
        "fig04_fetch_policy_group2",
        smt_experiments::figures::fig04_fetch_policy_group2,
    );
}
