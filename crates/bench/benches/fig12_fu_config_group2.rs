//! Bench target regenerating the paper's fig12_fu_config_group2.

fn main() {
    smt_bench::run_figure(
        "fig12_fu_config_group2",
        smt_experiments::figures::fig12_fu_config_group2,
    );
}
