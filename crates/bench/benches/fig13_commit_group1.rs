//! Bench target regenerating the paper's fig13_commit_group1.

fn main() {
    smt_bench::run_figure(
        "fig13_commit_group1",
        smt_experiments::figures::fig13_commit_group1,
    );
}
