//! Bench target regenerating the paper's fig10_su_depth_group2.

fn main() {
    smt_bench::run_figure(
        "fig10_su_depth_group2",
        smt_experiments::figures::fig10_su_depth_group2,
    );
}
