//! Criterion benchmarks of the simulator itself: simulated cycles per
//! wall-clock second on representative workloads and configurations.
//!
//! These measure the *tool*, not the paper's results — regressions here
//! make the experiment harness slower without changing any figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smt_core::{FetchPolicy, SimConfig, Simulator};
use smt_workloads::{workload, Scale, WorkloadKind};

fn bench_workload_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    for kind in [WorkloadKind::Matrix, WorkloadKind::Ll7, WorkloadKind::Sieve] {
        let w = workload(kind, Scale::Test);
        let program = w.build(4).expect("kernel fits");
        // Measure throughput in simulated cycles.
        let cycles = {
            let mut sim = Simulator::new(SimConfig::default(), &program);
            sim.run().expect("runs").cycles
        };
        group.throughput(Throughput::Elements(cycles));
        group.bench_with_input(BenchmarkId::new("4thr", w.name()), &program, |b, p| {
            b.iter(|| {
                let mut sim = Simulator::new(SimConfig::default(), p);
                sim.run().expect("runs").cycles
            });
        });
    }
    group.finish();
}

fn bench_fetch_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("fetch_policy_overhead");
    let w = workload(WorkloadKind::Ll1, Scale::Test);
    let program = w.build(4).expect("kernel fits");
    for policy in [
        FetchPolicy::TrueRoundRobin,
        FetchPolicy::MaskedRoundRobin,
        FetchPolicy::ConditionalSwitch,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let mut sim = Simulator::new(
                        SimConfig::default().with_fetch_policy(policy),
                        &program,
                    );
                    sim.run().expect("runs").cycles
                });
            },
        );
    }
    group.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    let w = workload(WorkloadKind::Matrix, Scale::Test);
    let program = w.build(4).expect("kernel fits");
    c.bench_function("functional_interpreter/matrix", |b| {
        b.iter(|| {
            let mut interp = smt_isa::interp::Interp::new(&program, 4);
            interp.run().expect("runs").steps
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_workload_simulation, bench_fetch_policies, bench_interpreter
}
criterion_main!(benches);
