//! Throughput benchmarks of the simulator itself: simulated cycles per
//! wall-clock second on representative workloads and configurations.
//!
//! These measure the *tool*, not the paper's results — regressions here
//! make the experiment harness slower without changing any figure. The
//! harness is hand-rolled (the build container has no crates.io access, so
//! Criterion is unavailable): each case runs a warmup iteration, then
//! enough timed iterations to cover a minimum wall-clock window, and
//! reports the best iteration plus simulated-cycles-per-second.

use std::time::{Duration, Instant};

use smt_core::{FetchPolicy, SimConfig, Simulator};
use smt_workloads::{workload, Scale, WorkloadKind};

/// Minimum total measured time per case; iterations repeat until reached.
const MIN_WINDOW: Duration = Duration::from_millis(500);
const MAX_ITERS: usize = 20;

/// Times `body` (which returns a simulated-cycle count) and prints a
/// criterion-style line: best-iteration wall time and simulated throughput.
fn bench_case(name: &str, mut body: impl FnMut() -> u64) {
    let cycles = body(); // warmup; also captures the workload's cycle count
    let mut best = Duration::MAX;
    let mut spent = Duration::ZERO;
    let mut iters = 0usize;
    while (spent < MIN_WINDOW || iters < 3) && iters < MAX_ITERS {
        let start = Instant::now();
        let got = body();
        let elapsed = start.elapsed();
        assert_eq!(got, cycles, "simulation must be deterministic");
        best = best.min(elapsed);
        spent += elapsed;
        iters += 1;
    }
    let secs = best.as_secs_f64();
    let mcps = cycles as f64 / secs / 1.0e6;
    println!(
        "{name:<44} {:>10.3} ms/iter   {cycles:>9} cycles   {mcps:>8.2} Mcycles/s   ({iters} iters)",
        secs * 1e3,
    );
}

fn bench_workload_simulation() {
    println!("# simulate: default config, 4 threads, Scale::Test");
    for kind in [WorkloadKind::Matrix, WorkloadKind::Ll7, WorkloadKind::Sieve] {
        let w = workload(kind, Scale::Test);
        let program = w.build(4).expect("kernel fits");
        bench_case(&format!("simulate/4thr/{}", w.name()), || {
            let mut sim = Simulator::new(SimConfig::default(), &program);
            sim.run().expect("runs").cycles
        });
    }
}

fn bench_fetch_policies() {
    println!("# fetch_policy_overhead: LL1, 4 threads");
    let w = workload(WorkloadKind::Ll1, Scale::Test);
    let program = w.build(4).expect("kernel fits");
    for policy in [
        FetchPolicy::TrueRoundRobin,
        FetchPolicy::MaskedRoundRobin,
        FetchPolicy::ConditionalSwitch,
    ] {
        bench_case(&format!("fetch_policy_overhead/{policy:?}"), || {
            let mut sim = Simulator::new(SimConfig::default().with_fetch_policy(policy), &program);
            sim.run().expect("runs").cycles
        });
    }
}

fn bench_interpreter() {
    println!("# functional interpreter");
    let w = workload(WorkloadKind::Matrix, Scale::Test);
    let program = w.build(4).expect("kernel fits");
    bench_case("functional_interpreter/matrix", || {
        let mut interp = smt_isa::interp::Interp::new(&program, 4);
        interp.run().expect("runs").steps
    });
}

fn main() {
    // `cargo bench` passes `--bench` (and possibly filters); ignore them.
    bench_workload_simulation();
    bench_fetch_policies();
    bench_interpreter();
}
