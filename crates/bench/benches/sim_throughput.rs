//! Throughput benchmarks of the simulator itself: simulated cycles per
//! wall-clock second on representative workloads and configurations.
//!
//! These measure the *tool*, not the paper's results — regressions here
//! make the experiment harness slower without changing any figure. The
//! harness is hand-rolled (the build container has no crates.io access, so
//! Criterion is unavailable): each case runs a warmup iteration, then
//! enough timed iterations to cover a minimum wall-clock window, and
//! reports the best iteration plus simulated-cycles-per-second.
//!
//! Flags (after `--`):
//!
//! * `--smoke` — shrink the measurement window for CI smoke runs; numbers
//!   are noisy but the harness and every case still execute end to end.
//! * `--json <path>` — additionally write the results as a flat JSON object
//!   (`<case>/mcycles_per_s`, `<case>/best_ms`, `<case>/cycles`), e.g. for
//!   the repo-root `BENCH_sim_throughput.json` trajectory file or a CI
//!   artifact.
//! * `<substring>` — any other non-flag argument filters cases by name,
//!   criterion-style (`simulate/4thr/Matrix` runs just that case; handy
//!   under a profiler).

use std::time::{Duration, Instant};

use smt_core::{FetchPolicy, SimConfig, Simulator};
use smt_experiments::{json, Cell};
use smt_isa::builder::ProgramBuilder;
use smt_isa::Program;
use smt_workloads::{workload, Scale, WorkloadKind};

/// Measurement parameters: iterations repeat until `window` of measured
/// time accumulates, capped at `max_iters`. `filter` restricts which cases
/// run (substring match on the case name, criterion-style).
#[derive(Clone)]
struct Opts {
    window: Duration,
    max_iters: usize,
    filter: Option<String>,
}

const FULL: Opts = Opts {
    window: Duration::from_millis(500),
    max_iters: 20,
    filter: None,
};
const SMOKE: Opts = Opts {
    window: Duration::from_millis(50),
    max_iters: 3,
    filter: None,
};

/// One finished case, for the optional JSON dump.
struct CaseResult {
    name: String,
    best_ms: f64,
    cycles: u64,
    mcps: f64,
}

/// Times `body` (which returns a simulated-cycle count) and prints a
/// criterion-style line: best-iteration wall time and simulated throughput.
fn bench_case(out: &mut Vec<CaseResult>, opts: &Opts, name: &str, mut body: impl FnMut() -> u64) {
    if let Some(f) = &opts.filter {
        if !name.contains(f.as_str()) {
            return;
        }
    }
    let cycles = body(); // warmup; also captures the workload's cycle count
    let mut best = Duration::MAX;
    let mut spent = Duration::ZERO;
    let mut iters = 0usize;
    while (spent < opts.window || iters < 3) && iters < opts.max_iters {
        let start = Instant::now();
        let got = body();
        let elapsed = start.elapsed();
        assert_eq!(got, cycles, "simulation must be deterministic");
        best = best.min(elapsed);
        spent += elapsed;
        iters += 1;
    }
    let secs = best.as_secs_f64();
    let mcps = cycles as f64 / secs / 1.0e6;
    println!(
        "{name:<44} {:>10.3} ms/iter   {cycles:>9} cycles   {mcps:>8.2} Mcycles/s   ({iters} iters)",
        secs * 1e3,
    );
    out.push(CaseResult {
        name: name.to_string(),
        best_ms: secs * 1e3,
        cycles,
        mcps,
    });
}

fn bench_workload_simulation(out: &mut Vec<CaseResult>, opts: &Opts) {
    println!("# simulate: default config, 4 threads, Scale::Test");
    for kind in [WorkloadKind::Matrix, WorkloadKind::Ll7, WorkloadKind::Sieve] {
        let w = workload(kind, Scale::Test);
        let program = w.build(4).expect("kernel fits");
        bench_case(out, opts, &format!("simulate/4thr/{}", w.name()), || {
            let mut sim = Simulator::new(SimConfig::default(), &program);
            sim.run().expect("runs").cycles
        });
    }
}

/// A store-to-load forwarding stress kernel: every iteration stores and
/// immediately reloads the same private slot (forwarding hit), touches
/// neighboring slots (partial overlap, no forward), and hammers one word
/// shared by all four threads so a single forwarding-index address carries
/// stores from every thread at once. An alternating branch keeps a steady
/// stream of wrong-path stores flowing through squash. This is the hot-path
/// profile the address-indexed forwarding map exists for.
fn forwarding_kernel(iters: i64) -> Program {
    const SLOTS: u64 = 4;
    const THREADS: u64 = 4;
    let mut b = ProgramBuilder::new();
    let region = b.alloc_zeroed(THREADS * SLOTS * 8);
    let shared = b.alloc_zeroed(8);
    let [base, shbase, v, w, x, y, seven, i, one, par, zero] = b.regs::<11>();
    b.slli(base, b.tid_reg(), (SLOTS * 8).trailing_zeros() as i32);
    let scratch = w;
    b.li(scratch, region as i64);
    b.add(base, base, scratch);
    b.li(shbase, shared as i64);
    b.li(seven, 7);
    b.li(i, iters);
    b.li(one, 1);
    b.li(zero, 0);
    b.li(v, 0x1234);
    let top = b.label();
    b.bind(top);
    b.sd(v, base, 0);
    b.ld(w, base, 0);
    b.sd(w, base, 8);
    b.ld(x, base, 16);
    b.sd(seven, shbase, 0);
    b.ld(y, shbase, 0);
    b.add(v, v, w);
    b.add(v, v, x);
    b.add(v, v, y);
    b.sd(v, base, 16);
    b.ld(x, base, 8);
    b.add(v, v, x);
    let skip = b.label();
    b.andi(par, i, 1);
    b.beq(par, zero, skip);
    b.sd(seven, base, 24);
    b.ld(par, base, 24);
    b.add(v, v, par);
    b.bind(skip);
    b.addi(i, i, -1);
    b.bge(i, one, top);
    b.halt();
    b.build(THREADS as usize)
        .expect("kernel fits a 4-thread window")
}

fn bench_store_forwarding(out: &mut Vec<CaseResult>, opts: &Opts) {
    println!("# store_forwarding: store/load-dense kernel, 4 threads");
    let program = forwarding_kernel(2_000);
    bench_case(out, opts, "store_forwarding/4thr/dense", || {
        let mut sim = Simulator::new(SimConfig::default(), &program);
        sim.run().expect("runs").cycles
    });
    // A deep scheduling unit keeps more resident stores per address, the
    // regime where the old per-load window scan was most expensive.
    bench_case(out, opts, "store_forwarding/4thr/deep_su", || {
        let mut sim = Simulator::new(SimConfig::default().with_su_depth(64), &program);
        sim.run().expect("runs").cycles
    });
}

fn bench_fetch_policies(out: &mut Vec<CaseResult>, opts: &Opts) {
    println!("# fetch_policy_overhead: LL1, 4 threads");
    let w = workload(WorkloadKind::Ll1, Scale::Test);
    let program = w.build(4).expect("kernel fits");
    for policy in [
        FetchPolicy::TrueRoundRobin,
        FetchPolicy::MaskedRoundRobin,
        FetchPolicy::ConditionalSwitch,
    ] {
        bench_case(
            out,
            opts,
            &format!("fetch_policy_overhead/{policy:?}"),
            || {
                let mut sim =
                    Simulator::new(SimConfig::default().with_fetch_policy(policy), &program);
                sim.run().expect("runs").cycles
            },
        );
    }
}

/// Cost of the observability layer, measured three ways on the same
/// program: the untraced `run()` path (what every experiment uses — the
/// sink-off overhead must stay at zero), the CPI-stack accountant alone
/// (the cheapest useful sink), and the full tracer bundle with a bounded
/// lifecycle ring (the most expensive supported sink).
fn bench_trace_overhead(out: &mut Vec<CaseResult>, opts: &Opts) {
    println!("# trace_overhead: Matrix, 4 threads, sink-off vs attached sinks");
    let w = workload(WorkloadKind::Matrix, Scale::Test);
    let program = w.build(4).expect("kernel fits");
    let config = SimConfig::default();
    bench_case(out, opts, "trace_overhead/matrix/off", || {
        let mut sim = Simulator::new(config.clone(), &program);
        sim.run().expect("runs").cycles
    });
    bench_case(out, opts, "trace_overhead/matrix/cpi_stack", || {
        let mut cpi = smt_trace::CpiStack::new(config.block_size as u32);
        let mut sim = Simulator::new(config.clone(), &program);
        sim.run_traced(&mut cpi).expect("runs").cycles
    });
    bench_case(out, opts, "trace_overhead/matrix/full_tracer", || {
        let mut tracer = smt_trace::Tracer::new(config.trace_shape(), 1 << 12);
        let mut sim = Simulator::new(config.clone(), &program);
        sim.run_traced(&mut tracer).expect("runs").cycles
    });
}

fn bench_interpreter(out: &mut Vec<CaseResult>, opts: &Opts) {
    println!("# functional interpreter");
    let w = workload(WorkloadKind::Matrix, Scale::Test);
    let program = w.build(4).expect("kernel fits");
    bench_case(out, opts, "functional_interpreter/matrix", || {
        let mut interp = smt_isa::interp::Interp::new(&program, 4);
        interp.run().expect("runs").steps
    });
}

fn main() {
    // `cargo bench` passes `--bench` (and possibly filters); pick out only
    // the flags this harness understands.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let json_at = argv.iter().position(|a| a == "--json");
    let json_path = json_at.and_then(|i| argv.get(i + 1)).cloned();
    let mut opts = if smoke { SMOKE } else { FULL };
    // Profiling hooks: stretch the measurement window without recompiling
    // (e.g. BENCH_WINDOW_MS=10000 BENCH_MAX_ITERS=100000 under gprofng).
    if let Ok(ms) = std::env::var("BENCH_WINDOW_MS") {
        opts.window = Duration::from_millis(ms.parse().expect("BENCH_WINDOW_MS: integer ms"));
    }
    if let Ok(n) = std::env::var("BENCH_MAX_ITERS") {
        opts.max_iters = n.parse().expect("BENCH_MAX_ITERS: integer");
    }
    // Any remaining non-flag argument is a case-name filter. `cargo bench`
    // itself may pass `--bench`; skip every `--flag` and the --json value.
    opts.filter = argv
        .iter()
        .enumerate()
        .find(|(i, a)| !a.starts_with("--") && json_at != Some(i.wrapping_sub(1)))
        .map(|(_, a)| a.clone());

    let mut results = Vec::new();
    bench_workload_simulation(&mut results, &opts);
    bench_store_forwarding(&mut results, &opts);
    bench_fetch_policies(&mut results, &opts);
    bench_trace_overhead(&mut results, &opts);
    bench_interpreter(&mut results, &opts);

    if let Some(path) = json_path {
        let mut fields: Vec<(String, Cell)> = Vec::new();
        fields.push((
            "mode".to_string(),
            Cell::Text(if smoke { "smoke" } else { "full" }.to_string()),
        ));
        for r in &results {
            fields.push((format!("{}/mcycles_per_s", r.name), Cell::Float(r.mcps)));
            fields.push((format!("{}/best_ms", r.name), Cell::Float(r.best_ms)));
            fields.push((format!("{}/cycles", r.name), Cell::Int(r.cycles)));
        }
        let borrowed: Vec<(&str, Cell)> = fields
            .iter()
            .map(|(k, v)| (k.as_str(), v.clone()))
            .collect();
        std::fs::write(&path, json::object_to_json(&borrowed))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("# wrote {path}");
    }
}
