//! Bench target regenerating the ext_cache_ports table.

fn main() {
    smt_bench::run_figure("ext_cache_ports", smt_experiments::figures::ext_cache_ports);
}
