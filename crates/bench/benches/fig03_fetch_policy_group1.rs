//! Bench target regenerating the paper's fig03_fetch_policy_group1.

fn main() {
    smt_bench::run_figure(
        "fig03_fetch_policy_group1",
        smt_experiments::figures::fig03_fetch_policy_group1,
    );
}
