//! Bench target regenerating the ablation_store_buffer table.

fn main() {
    smt_bench::run_figure(
        "ablation_store_buffer",
        smt_experiments::figures::ablation_store_buffer,
    );
}
