//! Warn-only CI perf gate: compares a fresh `sim_throughput --json` dump
//! against the newest recorded entry in the repo-root trajectory file
//! (`BENCH_sim_throughput.json`) and emits a GitHub `::warning::`
//! annotation for every `simulate/*` case that regressed by more than the
//! threshold.
//!
//! ```text
//! cargo run -p smt-bench --bin perf_gate -- bench_smoke.json BENCH_sim_throughput.json
//! ```
//!
//! The exit code is always 0: shared CI runners are far too noisy to gate
//! a merge on throughput (single-digit-percent signal under tens-of-percent
//! noise), so the gate's job is to leave a visible annotation a human can
//! weigh, not to block. The repository has no JSON parser dependency; the
//! extractor below reads just the subset our own writer emits (objects,
//! strings, numbers).

use std::process::ExitCode;

/// Regression threshold: warn when `current / recorded < 0.85`.
const THRESHOLD: f64 = 0.85;

/// Extracts `(depth-1 object key, full key path, number)` triples from a
/// JSON subset: nested objects, string keys, number/string values. Strings
/// never nest and escapes only matter for skipping — which is all the
/// trajectory file's prose notes need.
fn number_fields(text: &str) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    let mut path: Vec<String> = Vec::new();
    let mut key: Option<String> = None;
    let mut chars = text.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                let start = i + 1;
                let mut end = start;
                while let Some((j, d)) = chars.next() {
                    if d == '\\' {
                        chars.next();
                    } else if d == '"' {
                        end = j;
                        break;
                    }
                }
                let s = text[start..end].to_string();
                // A string before a ':' is a key; after one, a value.
                if key.is_none() {
                    key = Some(s);
                } else {
                    key = None;
                }
            }
            '{' => {
                path.push(key.take().unwrap_or_default());
            }
            '}' => {
                path.pop();
            }
            '0'..='9' | '-' => {
                let start = i;
                let mut end = text.len();
                while let Some(&(j, d)) = chars.peek() {
                    if d.is_ascii_digit() || matches!(d, '.' | 'e' | 'E' | '+' | '-') {
                        chars.next();
                    } else {
                        end = j;
                        break;
                    }
                }
                if let (Some(k), Ok(v)) = (key.take(), text[start..end].parse::<f64>()) {
                    let top = path.last().cloned().unwrap_or_default();
                    out.push((top, k, v));
                }
            }
            _ => {}
        }
    }
    out
}

/// The flat `case → Mcycles/s` map of a `--json` bench dump.
fn bench_cases(text: &str) -> Vec<(String, f64)> {
    number_fields(text)
        .into_iter()
        .filter_map(|(_, k, v)| {
            k.strip_suffix("/mcycles_per_s")
                .map(|case| (case.to_string(), v))
        })
        .collect()
}

/// The newest `pr*` entry of the trajectory file: its direct
/// `case → Mcycles/s` children (ratio blocks like `vs_pr6` sit one level
/// deeper and are excluded by the owning-object check).
fn last_recorded(text: &str) -> (String, Vec<(String, f64)>) {
    let fields = number_fields(text);
    let last_pr = fields
        .iter()
        .map(|(top, _, _)| top)
        .rfind(|t| t.starts_with("pr"))
        .cloned()
        .unwrap_or_default();
    let cases = fields
        .into_iter()
        .filter(|(top, _, _)| *top == last_pr)
        .filter_map(|(_, k, v)| {
            k.strip_suffix("/mcycles_per_s")
                .map(|case| (case.to_string(), v))
        })
        .collect();
    (last_pr, cases)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [current_path, recorded_path] = args.as_slice() else {
        eprintln!("usage: perf_gate <bench.json> <BENCH_sim_throughput.json>");
        // Even usage errors stay warn-only in CI; the harness bitrot shows
        // up in the step log either way.
        return ExitCode::SUCCESS;
    };
    let read = |p: &String| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            println!("::warning::perf-gate: cannot read {p}: {e}");
            String::new()
        })
    };
    let current = bench_cases(&read(current_path));
    let (entry, recorded) = last_recorded(&read(recorded_path));
    if entry.is_empty() || current.is_empty() {
        println!(
            "::warning::perf-gate: nothing to compare (no recorded entry or empty bench dump)"
        );
        return ExitCode::SUCCESS;
    }
    let mut warned = 0;
    let mut compared = 0;
    for (case, was) in &recorded {
        // Only the end-to-end simulation cases: the micro cases swing too
        // hard on shared runners to be worth an annotation each.
        if !case.starts_with("simulate/") {
            continue;
        }
        let Some((_, now)) = current.iter().find(|(c, _)| c == case) else {
            println!(
                "::warning::perf-gate: {case} recorded in {entry} but missing from the bench dump"
            );
            warned += 1;
            continue;
        };
        compared += 1;
        let ratio = now / was;
        if ratio < THRESHOLD {
            println!(
                "::warning::perf-gate: {case} at {now:.2} Mcycles/s is {ratio:.2}x the {entry} \
                 record ({was:.2}); >15% below — rerun interleaved A/B locally before trusting this"
            );
            warned += 1;
        }
    }
    println!("perf-gate: {compared} simulate/* cases compared against {entry}, {warned} warnings (informational only)");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRAJECTORY: &str = r#"{
      "_file": "doc { with braces } and \"quotes\"",
      "pr1": {
        "simulate/4thr/Matrix/mcycles_per_s": 2.0,
        "other/case/mcycles_per_s": 1.0
      },
      "pr2": {
        "simulate/4thr/Matrix/mcycles_per_s": 3.0,
        "simulate/4thr/LL7/mcycles_per_s": 1.5,
        "vs_pr1": {
          "simulate/4thr/Matrix": 1.5,
          "note": "prose: 10% faster { unbalanced"
        }
      }
    }"#;

    #[test]
    fn last_entry_wins_and_nested_ratios_are_excluded() {
        let (entry, cases) = last_recorded(TRAJECTORY);
        assert_eq!(entry, "pr2");
        assert_eq!(
            cases,
            vec![
                ("simulate/4thr/Matrix".to_string(), 3.0),
                ("simulate/4thr/LL7".to_string(), 1.5),
            ]
        );
    }

    #[test]
    fn bench_dump_parses_flat_cases() {
        let dump = r#"{"mode": "smoke",
            "simulate/4thr/Matrix/mcycles_per_s": 2.5,
            "simulate/4thr/Matrix/best_ms": 0.4,
            "simulate/4thr/Matrix/cycles": 1006}"#;
        let cases = bench_cases(dump);
        assert_eq!(cases, vec![("simulate/4thr/Matrix".to_string(), 2.5)]);
    }

    #[test]
    fn strings_with_braces_do_not_break_nesting() {
        // The _file doc and prose notes contain braces; depth tracking must
        // ignore them or pr attribution collapses.
        let fields = number_fields(TRAJECTORY);
        assert!(fields
            .iter()
            .any(|(top, k, v)| top == "pr1" && k == "other/case/mcycles_per_s" && *v == 1.0));
        assert!(fields
            .iter()
            .any(|(top, k, _)| top == "vs_pr1" && k == "simulate/4thr/Matrix"));
    }
}
