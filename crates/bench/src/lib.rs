//! Bench-harness support: one `cargo bench` target per paper table/figure.
//!
//! Each target regenerates its table and prints it with wall-clock timing.
//! By default the *test*-scale inputs are used so `cargo bench --workspace`
//! stays fast; set `SMT_BENCH_SCALE=paper` to regenerate the evaluation at
//! full scale (as the `report` binary does).
//!
//! ```text
//! cargo bench -p smt-bench --bench fig05_threads_group1
//! SMT_BENCH_SCALE=paper cargo bench -p smt-bench --bench table2_hit_rates
//! ```

use std::time::Instant;

use smt_experiments::runner::Runner;
use smt_experiments::Table;
use smt_workloads::Scale;

/// Scale selected by the `SMT_BENCH_SCALE` environment variable
/// (`paper` → [`Scale::Paper`], anything else/unset → [`Scale::Test`]).
#[must_use]
pub fn scale_from_env() -> Scale {
    match std::env::var("SMT_BENCH_SCALE").as_deref() {
        Ok("paper") => Scale::Paper,
        _ => Scale::Test,
    }
}

/// Runs one figure generator and prints its table with timing — the body of
/// every per-figure bench target.
pub fn run_figure(name: &str, generator: fn(&mut Runner) -> Table) {
    let scale = scale_from_env();
    let mut runner = Runner::new(scale);
    let start = Instant::now();
    let table = generator(&mut runner);
    let elapsed = start.elapsed();
    println!("{table}");
    println!(
        "[{name}] regenerated at {scale:?} scale in {:.2}s ({} verified simulations)\n",
        elapsed.as_secs_f64(),
        runner.runs()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_test() {
        // The env var is unset in the test environment.
        if std::env::var("SMT_BENCH_SCALE").is_err() {
            assert_eq!(scale_from_env(), Scale::Test);
        }
    }
}
