//! Writes a kernel in textual assembly, assembles it, runs it on both the
//! functional interpreter and the cycle simulator, and cross-checks them —
//! the workflow for experimenting with hand-written code.
//!
//! ```text
//! cargo run --example custom_kernel
//! ```

use smt_superscalar::core::{SimConfig, Simulator};
use smt_superscalar::isa::asm::assemble;
use smt_superscalar::isa::interp::Interp;
use smt_superscalar::isa::program::{DataImage, DATA_BASE};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Each thread (r0 = tid, r1 = nthreads) computes fib(10+tid) by
    // iteration and stores it to out[tid] at the start of data memory.
    let source = r"
        # registers: r2=a r3=b r4=i r5=limit r6=tmp r7=addr
        li   r2, 0          # a = fib(0)
        li   r3, 1          # b = fib(1)
        li   r4, 0
        addi r5, r0, 10     # limit = 10 + tid
    loop:
        add  r6, r2, r3     # tmp = a + b
        addi r2, r3, 0      # a = b
        addi r3, r6, 0      # b = tmp
        addi r4, r4, 1
        blt  r4, r5, loop
        slli r7, r0, 3      # out slot = DATA_BASE + 8*tid
        li   r6, 4096       # DATA_BASE
        add  r7, r7, r6
        sd   r2, (r7)
        halt
    ";
    let data = DataImage {
        size: DATA_BASE + 6 * 8,
        words: vec![],
    };
    let program = assemble(source, data)?;
    println!(
        "assembled {} instructions:\n{}",
        program.len(),
        program.disassemble()
    );

    let threads = 3;

    // Functional reference.
    let mut interp = Interp::new(&program, threads);
    interp.run()?;

    // Cycle-accurate run.
    let mut sim = Simulator::new(SimConfig::default().with_threads(threads), &program);
    let stats = sim.run()?;

    assert_eq!(sim.memory().words(), interp.mem_words(), "simulators agree");
    for tid in 0..threads as u64 {
        let fib = sim.mem_word(DATA_BASE + tid * 8);
        println!("thread {tid}: fib(10+{tid}) = {fib}");
    }
    println!(
        "\n{} cycles, IPC {:.2}, branch accuracy {:.1}% — and the cycle simulator \
         matched the functional interpreter word for word.",
        stats.cycles,
        stats.ipc(),
        stats.branches.accuracy()
    );
    Ok(())
}
