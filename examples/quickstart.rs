//! Quickstart: build a small kernel with the `ProgramBuilder`, run it on
//! the cycle-accurate SMT simulator, and inspect the statistics.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use smt_superscalar::isa::builder::ProgramBuilder;
use smt_superscalar::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Each thread computes the dot product of two 64-element slices of a
    // shared array pair, writing its partial sum to out[tid] — the
    // homogeneous-multitasking style used throughout the paper.
    let n = 256usize;
    let x: Vec<f64> = (0..n).map(|i| (i as f64) * 0.01).collect();
    let y: Vec<f64> = (0..n).map(|i| 1.0 - (i as f64) * 0.001).collect();

    let mut b = ProgramBuilder::new();
    let xb = b.data_f64(&x);
    let yb = b.data_f64(&y);
    let out = b.alloc_zeroed(6 * 8);
    let [nreg, chunk, i, hi, addr, v1, v2, acc, xbr, ybr, obr] = b.regs();
    b.li(nreg, n as i64);
    b.li(xbr, xb as i64);
    b.li(ybr, yb as i64);
    b.li(obr, out as i64);
    b.li(acc, 0);
    // [i, hi) = this thread's slice
    b.div(chunk, nreg, b.nthreads_reg());
    b.mul(i, b.tid_reg(), chunk);
    b.add(hi, i, chunk);
    let done = b.label();
    let top = b.label();
    b.bge(i, hi, done);
    b.bind(top);
    b.slli(addr, i, 3);
    b.add(addr, addr, xbr);
    b.ld(v1, addr, 0);
    b.slli(addr, i, 3);
    b.add(addr, addr, ybr);
    b.ld(v2, addr, 0);
    b.fmul(v1, v1, v2);
    b.fadd(acc, acc, v1);
    b.addi(i, i, 1);
    b.blt(i, hi, top);
    b.bind(done);
    b.slli(addr, b.tid_reg(), 3);
    b.add(addr, addr, obr);
    b.sd(acc, addr, 0);
    b.halt();

    let threads = 4;
    let program = b.build(threads)?;
    println!("program: {program}");

    let mut sim = Simulator::new(SimConfig::default().with_threads(threads), &program);
    let stats = sim.run()?;

    println!("cycles:              {}", stats.cycles);
    println!("instructions:        {}", stats.committed_total());
    println!("IPC:                 {:.2}", stats.ipc());
    println!("branch accuracy:     {:.1}%", stats.branches.accuracy());
    println!("cache hit rate:      {:.1}%", stats.cache.hit_rate());
    println!(
        "avg SU occupancy:    {:.1} entries",
        stats.avg_su_occupancy()
    );
    for tid in 0..threads {
        let partial = f64::from_bits(sim.mem_word(out + tid as u64 * 8));
        println!("partial[{tid}] = {partial:.4}");
    }
    Ok(())
}
