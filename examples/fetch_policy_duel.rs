//! Compares the paper's three fetch policies head-to-head on a benchmark
//! with real synchronization (LL5's serial chain) and on an embarrassingly
//! parallel one (LL1), printing cycles and the paper's speedup metric.
//!
//! ```text
//! cargo run --release --example fetch_policy_duel
//! ```

use smt_superscalar::core::stats::speedup;
use smt_superscalar::core::{FetchPolicy, SimConfig, Simulator};
use smt_superscalar::workloads::{workload, Scale, WorkloadKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let policies = [
        FetchPolicy::TrueRoundRobin,
        FetchPolicy::MaskedRoundRobin,
        FetchPolicy::ConditionalSwitch,
    ];

    for kind in [WorkloadKind::Ll1, WorkloadKind::Ll5] {
        let w = workload(kind, Scale::Test);
        println!("== {} ({}) ==", w.name(), w.group());

        // Single-threaded base case.
        let program = w.build(1)?;
        let mut sim = Simulator::new(SimConfig::default().with_threads(1), &program);
        let base = sim.run()?.cycles;
        w.check(sim.memory().words())?;
        println!("  base case (1 thread):      {base:>9} cycles");

        // Four threads under each policy.
        let program = w.build(4)?;
        for policy in policies {
            let config = SimConfig::default()
                .with_threads(4)
                .with_fetch_policy(policy);
            let mut sim = Simulator::new(config, &program);
            let stats = sim.run()?;
            w.check(sim.memory().words())?;
            println!(
                "  {policy:<22} {:>9} cycles  speedup {:+6.1}%  wait-spins {}",
                stats.cycles,
                speedup(base, stats.cycles) * 100.0,
                stats.wait_spin_cycles,
            );
        }
        println!();
    }
    println!(
        "LL1 gains from multithreading under every policy; LL5's serial chain \
         makes the extra threads spin on WAIT instead — the paper's negative case."
    );
    Ok(())
}
