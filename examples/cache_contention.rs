//! Reproduces the cache-contention effect of Section 5.3 in miniature:
//! as more threads share the uniform 8 KB cache, the hit rate first holds
//! (working sets fit) and then degrades (threads evict each other), and
//! the direct-mapped organization suffers more than the 4-way one.
//!
//! ```text
//! cargo run --release --example cache_contention
//! ```

use smt_superscalar::core::{SimConfig, Simulator};
use smt_superscalar::mem::CacheKind;
use smt_superscalar::workloads::{workload, Scale, WorkloadKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // LL1's page-aligned arrays fit the 8 KB cache but collide in the
    // direct-mapped organization — the paper's Section 5.3 working-set
    // scenario.
    let w = workload(WorkloadKind::Ll1, Scale::Paper);

    println!(
        "{:<8} {:>16} {:>16} {:>12} {:>12}",
        "threads", "direct cycles", "assoc cycles", "direct hit%", "assoc hit%"
    );
    for threads in 1..=6usize {
        let program = w.build(threads)?;
        let mut row = Vec::new();
        for kind in [CacheKind::DirectMapped, CacheKind::SetAssociative] {
            let config = SimConfig::default()
                .with_threads(threads)
                .with_cache_kind(kind);
            let mut sim = Simulator::new(config, &program);
            let stats = sim.run()?;
            w.check(sim.memory().words())?;
            row.push((stats.cycles, stats.cache.hit_rate()));
        }
        println!(
            "{:<8} {:>16} {:>16} {:>11.1}% {:>11.1}%",
            threads, row[0].0, row[1].0, row[0].1, row[1].1
        );
    }
    println!("\nThe associative cache holds its hit rate longer as thread count grows —\nthe paper's Figure 7/8 and Table 2 shape.");
    Ok(())
}
