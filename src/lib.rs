//! Facade crate re-exporting the whole SMT-superscalar simulator stack.
//!
//! See [`smt_core`] for the cycle-accurate simulator, [`smt_isa`] for the
//! instruction set and program builder, and [`smt_workloads`] for the paper's
//! eleven benchmarks.
//!
//! # Quickstart
//!
//! ```
//! use smt_superscalar::prelude::*;
//! use smt_superscalar::workloads::{workload, Scale};
//!
//! let w = workload(WorkloadKind::Matrix, Scale::Test);
//! let program = w.build(2).expect("kernel fits the register split");
//! let mut sim = Simulator::new(SimConfig::default().with_threads(2), &program);
//! let stats = sim.run().expect("program terminates");
//! w.check(sim.memory().words()).expect("reference result matches");
//! assert!(stats.cycles > 0);
//! ```
pub use smt_core as core;
pub use smt_experiments as experiments;
pub use smt_isa as isa;
pub use smt_mem as mem;
pub use smt_oracle as oracle;
pub use smt_serve as serve;
pub use smt_trace as trace;
pub use smt_uarch as uarch;
pub use smt_workloads as workloads;

/// Commonly used types, importable in one line.
pub mod prelude {
    pub use smt_core::{CommitPolicy, FetchPolicy, SimConfig, SimStats, Simulator};
    pub use smt_isa::{builder::ProgramBuilder, program::Program};
    pub use smt_workloads::{Workload, WorkloadKind};
}
