//! `smt-sim` — run one benchmark on the SMT superscalar simulator from the
//! command line and print its statistics.
//!
//! ```text
//! cargo run --release --bin smt-sim -- --workload matrix --threads 4
//! cargo run --release --bin smt-sim -- --workload ll5 --threads 6 \
//!     --fetch cswitch --commit lowest --cache direct --su 64 --scale test
//! cargo run --release --bin smt-sim -- --list
//! ```

use std::process::ExitCode;

use smt_superscalar::core::{CommitPolicy, FetchPolicy, PredictorKind, SimConfig, Simulator};
use smt_superscalar::mem::CacheKind;
use smt_superscalar::uarch::FuConfig;
use smt_superscalar::workloads::{workload, Scale, WorkloadKind};

struct Options {
    kind: WorkloadKind,
    scale: Scale,
    config: SimConfig,
    verify: bool,
}

fn usage() -> &'static str {
    "usage: smt-sim --workload <name> [options]\n\
     \n\
     options:\n\
       --workload <name>    ll1|ll2|ll3|ll5|ll7|ll12|laplace|mpd|matrix|sieve|water\n\
       --threads <1..6>     resident threads (default 4)\n\
       --fetch <policy>     truerr|maskedrr|cswitch|icount (default truerr)\n\
       --predictor <kind>   shared|gshare|partitioned (default shared)\n\
       --fetch-threads <n>  fetch ports, distinct threads per cycle (default 1)\n\
       --fetch-width <n>    instructions per fetch block (default 4)\n\
       --commit <policy>    flexible|lowest (default flexible)\n\
       --cache <kind>       assoc|direct (default assoc)\n\
       --su <entries>       scheduling-unit depth (default 32)\n\
       --fu <cfg>           default|enhanced (default default)\n\
       --scale <scale>      paper|test (default paper)\n\
       --no-verify          skip the reference-result check\n\
       --list               list workloads and exit"
}

fn parse_workload(name: &str) -> Option<WorkloadKind> {
    WorkloadKind::ALL
        .iter()
        .copied()
        .find(|k| k.name().eq_ignore_ascii_case(name))
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        kind: WorkloadKind::Matrix,
        scale: Scale::Paper,
        config: SimConfig::default(),
        verify: true,
    };
    let mut saw_workload = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .map(String::as_str)
                .ok_or(format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--workload" => {
                let name = value("--workload")?;
                opts.kind = parse_workload(name).ok_or(format!("unknown workload `{name}`"))?;
                saw_workload = true;
            }
            "--threads" => {
                let n: usize = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                opts.config = opts.config.with_threads(n);
            }
            "--fetch" => {
                opts.config = opts.config.with_fetch_policy(match value("--fetch")? {
                    "truerr" => FetchPolicy::TrueRoundRobin,
                    "maskedrr" => FetchPolicy::MaskedRoundRobin,
                    "cswitch" => FetchPolicy::ConditionalSwitch,
                    "icount" => FetchPolicy::Icount,
                    other => return Err(format!("unknown fetch policy `{other}`")),
                });
            }
            "--predictor" => {
                opts.config = opts.config.with_predictor(match value("--predictor")? {
                    "shared" => PredictorKind::SharedBtb,
                    "gshare" => PredictorKind::Gshare,
                    "partitioned" => PredictorKind::PartitionedBtb,
                    other => return Err(format!("unknown predictor `{other}`")),
                });
            }
            "--fetch-threads" => {
                let n: usize = value("--fetch-threads")?
                    .parse()
                    .map_err(|e| format!("--fetch-threads: {e}"))?;
                opts.config = opts.config.with_fetch_threads(n);
            }
            "--fetch-width" => {
                let n: usize = value("--fetch-width")?
                    .parse()
                    .map_err(|e| format!("--fetch-width: {e}"))?;
                opts.config = opts.config.with_fetch_width(n);
            }
            "--commit" => {
                opts.config = opts.config.with_commit_policy(match value("--commit")? {
                    "flexible" => CommitPolicy::Flexible,
                    "lowest" => CommitPolicy::LowestOnly,
                    other => return Err(format!("unknown commit policy `{other}`")),
                });
            }
            "--cache" => {
                opts.config = opts.config.with_cache_kind(match value("--cache")? {
                    "assoc" => CacheKind::SetAssociative,
                    "direct" => CacheKind::DirectMapped,
                    other => return Err(format!("unknown cache kind `{other}`")),
                });
            }
            "--su" => {
                let n: usize = value("--su")?.parse().map_err(|e| format!("--su: {e}"))?;
                opts.config = opts.config.with_su_depth(n);
            }
            "--fu" => {
                opts.config = opts.config.with_fu(match value("--fu")? {
                    "default" => FuConfig::paper_default(),
                    "enhanced" => FuConfig::paper_enhanced(),
                    other => return Err(format!("unknown fu config `{other}`")),
                });
            }
            "--scale" => {
                opts.scale = match value("--scale")? {
                    "paper" => Scale::Paper,
                    "test" => Scale::Test,
                    other => return Err(format!("unknown scale `{other}`")),
                };
            }
            "--no-verify" => opts.verify = false,
            "--list" => {
                for k in WorkloadKind::ALL {
                    println!("{:<8} {}", k.name().to_lowercase(), k.group());
                }
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if !saw_workload {
        return Err("missing --workload".into());
    }
    opts.config.validate().map_err(|e| e.to_string())?;
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    let w = workload(opts.kind, opts.scale);
    let program = match w.build(opts.config.threads) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{} ({}) · {} threads · {} · {} · {}×{} fetch · {} · SU {} · {}",
        w.name(),
        w.group(),
        opts.config.threads,
        opts.config.fetch_policy,
        opts.config.predictor,
        opts.config.fetch_threads,
        opts.config.fetch_width,
        opts.config.cache_kind,
        opts.config.su_depth,
        opts.config.commit_policy,
    );

    let mut sim = Simulator::new(opts.config, &program);
    let stats = match sim.run() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("simulation error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.verify {
        if let Err(e) = w.check(sim.memory().words()) {
            eprintln!("RESULT CHECK FAILED: {e}");
            return ExitCode::FAILURE;
        }
    }

    println!("cycles:               {}", stats.cycles);
    println!("instructions:         {}", stats.committed_total());
    println!("IPC:                  {:.3}", stats.ipc());
    println!("issued (incl. wrong-path): {}", stats.issued);
    println!("squashed:             {}", stats.squashed);
    println!(
        "branch accuracy:      {:.1}%  ({} resolved)",
        stats.branches.accuracy(),
        stats.branches.resolved
    );
    println!(
        "cache hit rate:       {:.1}%  ({} accesses)",
        stats.cache.hit_rate(),
        stats.cache.accesses
    );
    println!("SU stalls:            {}", stats.su_stall_cycles);
    println!("store-buffer stalls:  {}", stats.store_buffer_full_stalls);
    println!("wait spin cycles:     {}", stats.wait_spin_cycles);
    println!("avg SU occupancy:     {:.1}", stats.avg_su_occupancy());
    for (tid, committed) in stats.committed.iter().enumerate() {
        println!("  thread {tid}: {committed} instructions");
    }
    if opts.verify {
        println!("result check:         PASSED");
    }
    ExitCode::SUCCESS
}
